#include <gtest/gtest.h>

#include "core/block_rs.h"
#include "core/naive.h"
#include "core/pipeline.h"
#include "core/skyline.h"
#include "core/trs.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

TEST(EdgeCaseTest, EmptyDatasetReturnsEmpty) {
  Dataset data(Schema::Categorical({3, 3}));
  Rng rng(1);
  SimilaritySpace space = MakeRandomSpace({3, 3}, rng);
  Object q({0, 0});
  SimulatedDisk disk(256);
  for (Algorithm algo : {Algorithm::kNaive, Algorithm::kBRS, Algorithm::kSRS,
                         Algorithm::kTRS}) {
    auto prepared = PrepareDataset(&disk, data, algo, {});
    ASSERT_TRUE(prepared.ok());
    auto result = RunReverseSkyline(*prepared, space, q, algo, {});
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo);
    EXPECT_TRUE(result->rows.empty()) << AlgorithmName(algo);
    EXPECT_EQ(result->stats.result_size, 0u);
  }
}

TEST(EdgeCaseTest, SingleObjectAlwaysInResult) {
  Dataset data(Schema::Categorical({3, 3}));
  data.AppendCategoricalRow({1, 2});
  Rng rng(2);
  SimilaritySpace space = MakeRandomSpace({3, 3}, rng);
  Object q({0, 0});
  SimulatedDisk disk(256);
  for (Algorithm algo : {Algorithm::kNaive, Algorithm::kBRS, Algorithm::kSRS,
                         Algorithm::kTRS}) {
    auto prepared = PrepareDataset(&disk, data, algo, {});
    ASSERT_TRUE(prepared.ok());
    auto result = RunReverseSkyline(*prepared, space, q, algo, {});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows, (std::vector<RowId>{0})) << AlgorithmName(algo);
  }
}

TEST(EdgeCaseTest, AllRowsIdenticalQueryElsewhere) {
  // Every row is a duplicate of every other, and Q differs -> each row is
  // pruned by its twin; the result is empty.
  Dataset data(Schema::Categorical({3}));
  for (int i = 0; i < 20; ++i) data.AppendCategoricalRow({1});
  Rng rng(3);
  SimilaritySpace space = MakeRandomSpace({3}, rng);
  Object q({0});
  ASSERT_GT(space.CatDist(0, 0, 1), 0.0);  // Q really is elsewhere
  SimulatedDisk disk(256);
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    auto prepared = PrepareDataset(&disk, data, algo, {});
    ASSERT_TRUE(prepared.ok());
    auto result = RunReverseSkyline(*prepared, space, q, algo, {});
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->rows.empty()) << AlgorithmName(algo);
  }
}

TEST(EdgeCaseTest, AllRowsIdenticalQueryAtThem) {
  // Q equals the duplicated value: no strict attribute exists anywhere, so
  // every row survives.
  Dataset data(Schema::Categorical({3}));
  for (int i = 0; i < 15; ++i) data.AppendCategoricalRow({1});
  Rng rng(4);
  SimilaritySpace space = MakeRandomSpace({3}, rng);
  Object q({1});
  SimulatedDisk disk(256);
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    auto prepared = PrepareDataset(&disk, data, algo, {});
    ASSERT_TRUE(prepared.ok());
    auto result = RunReverseSkyline(*prepared, space, q, algo, {});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows.size(), 15u) << AlgorithmName(algo);
  }
}

TEST(EdgeCaseTest, MemoryBudgetBelowTwoPagesRejected) {
  RandomInstance inst(5, 20, {3, 3});
  SimulatedDisk disk(256);
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kBRS, {});
  ASSERT_TRUE(prepared.ok());
  Object q({0, 0});
  RSOptions opts;
  opts.memory.pages = 1;
  auto brs = BlockReverseSkyline(prepared->stored, inst.space, q, opts);
  EXPECT_TRUE(brs.status().IsInvalidArgument());
  auto trs = TreeReverseSkyline(prepared->stored, inst.space, q, opts);
  EXPECT_TRUE(trs.status().IsInvalidArgument());
}

TEST(EdgeCaseTest, MemoryLargerThanDatasetSinglePhaseBatch) {
  RandomInstance inst(6, 100, {5, 5});
  Rng rng(7);
  Object q = SampleUniformQuery(inst.data, rng);
  auto expected = ReverseSkylineOracle(inst.data, inst.space, q);
  SimulatedDisk disk(256);
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    auto prepared = PrepareDataset(&disk, inst.data, algo, {});
    ASSERT_TRUE(prepared.ok());
    RSOptions opts;
    opts.memory.pages = 100000;
    auto result = RunReverseSkyline(*prepared, inst.space, q, algo, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows, expected) << AlgorithmName(algo);
    EXPECT_EQ(result->stats.phase1_batches, 1u) << AlgorithmName(algo);
  }
}

TEST(EdgeCaseTest, QueryValueOutsideDataDistribution) {
  // Query far from every object: the reverse skyline is typically large
  // (hard to dominate a far-away query on all attributes). Just verify
  // algorithms agree with the oracle.
  RandomInstance inst(8, 150, {10, 10});
  Object q({9, 9});
  auto expected = ReverseSkylineOracle(inst.data, inst.space, q);
  SimulatedDisk disk(256);
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    auto prepared = PrepareDataset(&disk, inst.data, algo, {});
    ASSERT_TRUE(prepared.ok());
    auto result = RunReverseSkyline(*prepared, inst.space, q, algo, {});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows, expected) << AlgorithmName(algo);
  }
}

TEST(EdgeCaseTest, ZeroDistanceBetweenDistinctValues) {
  // Non-metric measures may violate reflexivity-adjacent intuitions:
  // d(x, y) = 0 for x != y is allowed. Build such a space and verify
  // correctness (the AL-Tree must not conflate path equality with
  // zero distance).
  Dataset data(Schema::Categorical({3, 3}));
  data.AppendCategoricalRow({0, 0});
  data.AppendCategoricalRow({1, 0});
  data.AppendCategoricalRow({2, 1});
  data.AppendCategoricalRow({0, 2});
  SimilaritySpace space;
  DissimilarityMatrix m0(3);
  m0.SetSymmetric(0, 1, 0.0);  // distinct values, zero distance
  m0.SetSymmetric(0, 2, 0.7);
  m0.SetSymmetric(1, 2, 0.3);
  DissimilarityMatrix m1(3);
  m1.SetSymmetric(0, 1, 0.4);
  m1.SetSymmetric(0, 2, 0.2);
  m1.SetSymmetric(1, 2, 0.9);
  space.AddCategorical(std::move(m0));
  space.AddCategorical(std::move(m1));

  Rng rng(9);
  for (int i = 0; i < 9; ++i) {
    Object q({static_cast<ValueId>(i % 3), static_cast<ValueId>(i / 3)});
    auto expected = ReverseSkylineOracle(data, space, q);
    SimulatedDisk disk(256);
    for (Algorithm algo :
         {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
      auto prepared = PrepareDataset(&disk, data, algo, {});
      ASSERT_TRUE(prepared.ok());
      auto result = RunReverseSkyline(*prepared, space, q, algo, {});
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->rows, expected)
          << AlgorithmName(algo) << " q=" << q.ToString();
    }
  }
}

TEST(EdgeCaseTest, SingleAttributeSchema) {
  RandomInstance inst(10, 60, {8});
  Rng rng(11);
  Object q = SampleUniformQuery(inst.data, rng);
  auto expected = ReverseSkylineOracle(inst.data, inst.space, q);
  SimulatedDisk disk(256);
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    auto prepared = PrepareDataset(&disk, inst.data, algo, {});
    ASSERT_TRUE(prepared.ok());
    auto result = RunReverseSkyline(*prepared, inst.space, q, algo, {});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows, expected) << AlgorithmName(algo);
  }
}

TEST(EdgeCaseTest, ScratchFilesAreCleanedUp) {
  RandomInstance inst(12, 200, {5, 5});
  Rng rng(13);
  Object q = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(256);
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prepared.ok());
  const uint64_t pages_before = disk.TotalPages();
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    auto result = RunReverseSkyline(*prepared, inst.space, q, algo, {});
    ASSERT_TRUE(result.ok());
  }
  EXPECT_EQ(disk.TotalPages(), pages_before);  // no scratch leaked
}

TEST(EdgeCaseTest, NonzeroSelfDissimilarity) {
  // Nothing in the library may *rely* on d(x, x) = 0 — the paper calls it
  // an intuition most measures follow, not a requirement (reflexivity is
  // one of the metric properties §2 says can fail). Random matrices with
  // nonzero diagonals must still match the oracle everywhere.
  Rng rng(1001);
  const std::vector<size_t> cards = {5, 6, 4};
  Dataset data = GenerateUniform(250, cards, rng);
  SimilaritySpace space;
  for (size_t c : cards) {
    space.AddCategorical(
        MakeRandomMatrix(c, rng, {.symmetric = true, .zero_diagonal = false}));
  }
  for (int qi = 0; qi < 3; ++qi) {
    Object q = SampleUniformQuery(data, rng);
    auto expected = ReverseSkylineOracle(data, space, q);
    SimulatedDisk disk(512);
    for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS,
                           Algorithm::kTileTRS}) {
      auto prepared = PrepareDataset(&disk, data, algo, {});
      ASSERT_TRUE(prepared.ok());
      RSOptions opts;
      opts.memory.pages = 3;
      auto result = RunReverseSkyline(*prepared, space, q, algo, opts);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->rows, expected)
          << AlgorithmName(algo) << " q" << qi;
    }
  }
}

}  // namespace
}  // namespace nmrs
