#include <gtest/gtest.h>

#include <tuple>

#include "core/pipeline.h"
#include "core/skyline.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

// Parameter space: (seed, rows, cardinality-profile id, memory pages,
// page size). Every disk-based algorithm must return exactly the oracle's
// answer on every point.
using Params = std::tuple<uint64_t, uint64_t, int, uint64_t, size_t>;

std::vector<size_t> CardProfile(int id) {
  switch (id) {
    case 0:
      return {4, 4};           // dense, duplicate-heavy
    case 1:
      return {8, 8, 8};        // moderate
    case 2:
      return {3, 17, 5};       // mixed cardinalities
    case 3:
      return {2, 2, 2, 2, 2};  // binary attributes
    default:
      return {30, 30};         // sparse
  }
}

class ReverseSkylineProperty : public ::testing::TestWithParam<Params> {};

TEST_P(ReverseSkylineProperty, AllAlgorithmsMatchOracle) {
  const auto [seed, rows, profile, mem_pages, page_size] = GetParam();
  RandomInstance inst(seed, rows, CardProfile(profile));
  Rng rng(seed ^ 0xabcdef);
  SimulatedDisk disk(page_size);
  RSOptions opts;
  opts.memory.pages = mem_pages;

  for (int qi = 0; qi < 2; ++qi) {
    Object q = qi == 0 ? SampleUniformQuery(inst.data, rng)
                       : SampleRowQuery(inst.data, rng);
    auto expected = ReverseSkylineOracle(inst.data, inst.space, q);
    for (Algorithm algo :
         {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS,
          Algorithm::kTileSRS, Algorithm::kTileTRS}) {
      auto prepared = PrepareDataset(&disk, inst.data, algo, {});
      ASSERT_TRUE(prepared.ok());
      auto result = RunReverseSkyline(*prepared, inst.space, q, algo, opts);
      ASSERT_TRUE(result.ok()) << AlgorithmName(algo);
      EXPECT_EQ(result->rows, expected)
          << AlgorithmName(algo) << " seed=" << seed << " rows=" << rows
          << " profile=" << profile << " mem=" << mem_pages
          << " page=" << page_size << " q=" << q.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReverseSkylineProperty,
    ::testing::Combine(::testing::Values(1, 2, 3),          // seeds
                       ::testing::Values(40, 150),          // rows
                       ::testing::Values(0, 1, 2, 3, 4),    // profiles
                       ::testing::Values(2, 3, 7),          // memory pages
                       ::testing::Values(128, 1024)));      // page size

// Duplicate-heavy datasets: every value combination repeated many times.
class DuplicateHeavyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DuplicateHeavyProperty, AlgorithmsHandleDuplicates) {
  const uint64_t seed = GetParam();
  RandomInstance inst(seed, 200, {2, 3});  // 6 combos, ~33 copies each
  Rng rng(seed + 7);
  Object q = SampleUniformQuery(inst.data, rng);
  auto expected = ReverseSkylineOracle(inst.data, inst.space, q);
  SimulatedDisk disk(256);
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    auto prepared = PrepareDataset(&disk, inst.data, algo, {});
    ASSERT_TRUE(prepared.ok());
    RSOptions opts;
    opts.memory.pages = 2;
    auto result = RunReverseSkyline(*prepared, inst.space, q, algo, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows, expected) << AlgorithmName(algo);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DuplicateHeavyProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// Query-at-duplicate edge: when Q coincides with a duplicated row, all the
// duplicates survive (they cannot strictly dominate Q w.r.t. each other).
class QueryAtDuplicateProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryAtDuplicateProperty, DuplicatesOfQuerySurvive) {
  const uint64_t seed = GetParam();
  RandomInstance inst(seed, 120, {3, 3});
  Rng rng(seed);
  const RowId pick = rng.Uniform(inst.data.num_rows());
  Object q = inst.data.GetObject(pick);
  // All rows with exactly Q's values.
  std::vector<RowId> twins;
  for (RowId r = 0; r < inst.data.num_rows(); ++r) {
    if (inst.data.GetObject(r) == q) twins.push_back(r);
  }
  ASSERT_FALSE(twins.empty());

  auto expected = ReverseSkylineOracle(inst.data, inst.space, q);
  for (RowId t : twins) {
    EXPECT_NE(std::find(expected.begin(), expected.end(), t),
              expected.end());
  }
  SimulatedDisk disk(256);
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prepared.ok());
  auto result =
      RunReverseSkyline(*prepared, inst.space, q, Algorithm::kTRS, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryAtDuplicateProperty,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace nmrs
