#include "core/skyline.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;
using testing::RunningExample;

TEST(DominatesWrtTest, RunningExampleCase) {
  RunningExample ex;
  const Schema& schema = ex.dataset.schema();
  // O1 dominates Q with respect to O2 (O1 is O2's pruner in Table 1).
  Object o1 = ex.dataset.GetObject(0);
  Object o2 = ex.dataset.GetObject(1);
  EXPECT_TRUE(DominatesWrt(ex.space, schema, /*ref=*/o2, o1, ex.query, {}));
  // Q does not dominate itself w.r.t. anything (no strict attribute).
  EXPECT_FALSE(
      DominatesWrt(ex.space, schema, o2, ex.query, ex.query, {}));
}

TEST(DominatesWrtTest, Irreflexive) {
  RunningExample ex;
  const Schema& schema = ex.dataset.schema();
  for (RowId r = 0; r < ex.dataset.num_rows(); ++r) {
    Object o = ex.dataset.GetObject(r);
    EXPECT_FALSE(DominatesWrt(ex.space, schema, ex.query, o, o, {}));
  }
}

TEST(DynamicSkylineBNLTest, QueryMemberIffNoPrunerExists) {
  // For the running example and ref = O2: O1 is at distance (0.8->RHL...)
  // Spot-check: the skyline w.r.t. O2 contains O2's duplicates (O5) since
  // duplicates are never dominated.
  RunningExample ex;
  Object o2 = ex.dataset.GetObject(1);
  auto sky = DynamicSkylineBNL(ex.dataset, ex.space, o2);
  // O2 itself (distance 0 everywhere) and its duplicate O5 are in the
  // skyline w.r.t. O2.
  EXPECT_NE(std::find(sky.begin(), sky.end(), 1u), sky.end());
  EXPECT_NE(std::find(sky.begin(), sky.end(), 4u), sky.end());
}

TEST(DynamicSkylineBNLTest, SkylinePointsAreMutuallyNonDominated) {
  RandomInstance inst(11, 120, {6, 6, 6});
  Rng rng(12);
  Object ref = SampleUniformQuery(inst.data, rng);
  auto sky = DynamicSkylineBNL(inst.data, inst.space, ref);
  const Schema& schema = inst.data.schema();
  for (RowId a : sky) {
    for (RowId b : sky) {
      if (a == b) continue;
      EXPECT_FALSE(DominatesWrt(inst.space, schema, ref,
                                inst.data.GetObject(a),
                                inst.data.GetObject(b), {}));
    }
  }
}

TEST(DynamicSkylineBNLTest, NonSkylinePointsAreDominated) {
  RandomInstance inst(13, 100, {5, 5, 5});
  Rng rng(14);
  Object ref = SampleUniformQuery(inst.data, rng);
  auto sky = DynamicSkylineBNL(inst.data, inst.space, ref);
  std::vector<bool> in_sky(inst.data.num_rows(), false);
  for (RowId r : sky) in_sky[r] = true;
  const Schema& schema = inst.data.schema();
  for (RowId r = 0; r < inst.data.num_rows(); ++r) {
    if (in_sky[r]) continue;
    bool dominated = false;
    for (RowId other = 0; other < inst.data.num_rows() && !dominated;
         ++other) {
      if (other == r) continue;
      dominated = DominatesWrt(inst.space, schema, ref,
                               inst.data.GetObject(other),
                               inst.data.GetObject(r), {});
    }
    EXPECT_TRUE(dominated) << "row " << r;
  }
}

TEST(ReverseSkylineOracleTest, RunningExampleResult) {
  RunningExample ex;
  auto rs = ReverseSkylineOracle(ex.dataset, ex.space, ex.query);
  EXPECT_EQ(rs, (std::vector<RowId>{2, 5}));
}

TEST(ReverseSkylineFormulationsAgree, RandomInstances) {
  // The pruner-based oracle and the skyline-membership formulation must
  // produce identical results (Definition 1 equivalence).
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    RandomInstance inst(seed, 60, {4, 4, 4});
    Rng rng(seed + 100);
    Object q = SampleUniformQuery(inst.data, rng);
    EXPECT_EQ(ReverseSkylineOracle(inst.data, inst.space, q),
              ReverseSkylineViaSkylineMembership(inst.data, inst.space, q))
        << "seed " << seed;
  }
}

TEST(ReverseSkylineFormulationsAgree, WithDuplicatesAndSubsets) {
  RandomInstance inst(7, 80, {3, 3});  // dense -> many duplicates
  Rng rng(77);
  Object q = SampleUniformQuery(inst.data, rng);
  for (const std::vector<AttrId>& sel :
       std::vector<std::vector<AttrId>>{{}, {0}, {1}, {0, 1}}) {
    EXPECT_EQ(
        ReverseSkylineOracle(inst.data, inst.space, q, sel),
        ReverseSkylineViaSkylineMembership(inst.data, inst.space, q, sel));
  }
}

TEST(ReverseSkylineOracleTest, QueryEqualToARowKeepsThatRow) {
  // If Q coincides with a database row X, nothing can strictly dominate Q
  // w.r.t. X, so X must be in the reverse skyline.
  RandomInstance inst(21, 50, {5, 5, 5});
  Rng rng(22);
  const RowId pick = rng.Uniform(inst.data.num_rows());
  Object q = inst.data.GetObject(pick);
  auto rs = ReverseSkylineOracle(inst.data, inst.space, q);
  EXPECT_NE(std::find(rs.begin(), rs.end(), pick), rs.end());
}

TEST(ReverseSkylineOracleTest, EmptyDataset) {
  Dataset d(Schema::Categorical({3}));
  Rng rng(1);
  SimilaritySpace space = MakeRandomSpace({3}, rng);
  Object q({0});
  EXPECT_TRUE(ReverseSkylineOracle(d, space, q).empty());
}

}  // namespace
}  // namespace nmrs
