#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/skyline.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kNaive,   Algorithm::kBRS,     Algorithm::kSRS,
    Algorithm::kTRS,     Algorithm::kTileSRS, Algorithm::kTileTRS};

TEST(AlgorithmsTest, AllAgreeWithOracleOnMediumInstance) {
  RandomInstance inst(42, 400, {8, 6, 10});
  Rng rng(43);
  Object q = SampleUniformQuery(inst.data, rng);
  auto expected = ReverseSkylineOracle(inst.data, inst.space, q);

  SimulatedDisk disk(512);
  RSOptions opts;
  opts.memory.pages = 4;
  for (Algorithm algo : kAllAlgorithms) {
    auto prepared = PrepareDataset(&disk, inst.data, algo, {},
                                   std::string(AlgorithmName(algo)));
    ASSERT_TRUE(prepared.ok());
    auto result = RunReverseSkyline(*prepared, inst.space, q, algo, opts);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo) << ": "
                             << result.status();
    EXPECT_EQ(result->rows, expected) << AlgorithmName(algo);
    EXPECT_EQ(result->stats.result_size, expected.size());
  }
}

TEST(AlgorithmsTest, RowQueriesNeverLoseTheMatchingRow) {
  RandomInstance inst(17, 200, {6, 6});
  Rng rng(18);
  SimulatedDisk disk(512);
  for (int trial = 0; trial < 5; ++trial) {
    const RowId pick = rng.Uniform(inst.data.num_rows());
    Object q = inst.data.GetObject(pick);
    for (Algorithm algo : {Algorithm::kBRS, Algorithm::kTRS}) {
      auto prepared = PrepareDataset(&disk, inst.data, algo, {});
      ASSERT_TRUE(prepared.ok());
      auto result = RunReverseSkyline(*prepared, inst.space, q, algo, {});
      ASSERT_TRUE(result.ok());
      // Q == row pick: nothing strictly dominates Q w.r.t. that row.
      EXPECT_NE(std::find(result->rows.begin(), result->rows.end(), pick),
                result->rows.end())
          << AlgorithmName(algo);
    }
  }
}

TEST(AlgorithmsTest, StatsAreInternallyConsistent) {
  RandomInstance inst(5, 300, {7, 7, 7});
  Rng rng(6);
  Object q = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(512);
  RSOptions opts;
  opts.memory.pages = 3;
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    auto prepared = PrepareDataset(&disk, inst.data, algo, {});
    ASSERT_TRUE(prepared.ok());
    auto result = RunReverseSkyline(*prepared, inst.space, q, algo, opts);
    ASSERT_TRUE(result.ok());
    const QueryStats& s = result->stats;
    EXPECT_GE(s.phase1_batches, 1u) << AlgorithmName(algo);
    EXPECT_GE(s.phase1_survivors, s.result_size) << AlgorithmName(algo);
    if (s.phase1_survivors > 0) {
      EXPECT_GE(s.phase2_batches, 1u) << AlgorithmName(algo);
    }
    EXPECT_GT(s.checks, 0u) << AlgorithmName(algo);
    EXPECT_GT(s.io.TotalReads(), 0u) << AlgorithmName(algo);
    // Phase 2 rescans D once per batch, plus the phase-1 scan.
    const uint64_t d_pages = prepared->stored.num_pages();
    EXPECT_GE(s.io.TotalReads(), d_pages * (1 + s.phase2_batches))
        << AlgorithmName(algo);
    EXPECT_GE(s.ResponseMillis(), s.compute_millis);
  }
}

TEST(AlgorithmsTest, SortingImprovesPhase1Pruning) {
  // The whole point of SRS (§4.2): clustering shared values increases
  // intra-batch pruning, so SRS leaves at most as many phase-1 survivors
  // as BRS on the same data and memory.
  RandomInstance inst(23, 2000, {5, 5, 5, 5});
  Rng rng(24);
  Object q = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(1024);
  RSOptions opts;
  opts.memory.pages = 3;
  auto brs_prep = PrepareDataset(&disk, inst.data, Algorithm::kBRS, {});
  auto srs_prep = PrepareDataset(&disk, inst.data, Algorithm::kSRS, {});
  ASSERT_TRUE(brs_prep.ok() && srs_prep.ok());
  auto brs = RunReverseSkyline(*brs_prep, inst.space, q, Algorithm::kBRS,
                               opts);
  auto srs = RunReverseSkyline(*srs_prep, inst.space, q, Algorithm::kSRS,
                               opts);
  ASSERT_TRUE(brs.ok() && srs.ok());
  EXPECT_EQ(brs->rows, srs->rows);
  EXPECT_LE(srs->stats.phase1_survivors, brs->stats.phase1_survivors);
}

TEST(AlgorithmsTest, TrsUsesFewerChecksThanSrsAtScale) {
  // Paper §5: group-level reasoning cuts attribute-level comparisons by a
  // multiple. Verify the direction (not the exact factor) on a
  // non-trivial instance.
  RandomInstance inst(31, 3000, {10, 10, 10, 10, 10});
  Rng rng(32);
  Object q = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(4096);
  RSOptions opts;
  opts.memory.pages = 4;
  auto prep = PrepareDataset(&disk, inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prep.ok());
  auto srs = RunReverseSkyline(*prep, inst.space, q, Algorithm::kSRS, opts);
  auto trs = RunReverseSkyline(*prep, inst.space, q, Algorithm::kTRS, opts);
  ASSERT_TRUE(srs.ok() && trs.ok());
  EXPECT_EQ(srs->rows, trs->rows);
  EXPECT_LT(trs->stats.checks, srs->stats.checks);
}

TEST(AlgorithmsTest, ResultsIndependentOfPageSize) {
  RandomInstance inst(47, 250, {6, 6, 6});
  Rng rng(48);
  Object q = SampleUniformQuery(inst.data, rng);
  auto expected = ReverseSkylineOracle(inst.data, inst.space, q);
  for (size_t page_size : {64u, 256u, 4096u, 32u * 1024u}) {
    SimulatedDisk disk(page_size);
    for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS,
                           Algorithm::kTRS}) {
      auto prepared = PrepareDataset(&disk, inst.data, algo, {});
      ASSERT_TRUE(prepared.ok());
      auto result = RunReverseSkyline(*prepared, inst.space, q, algo, {});
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->rows, expected)
          << AlgorithmName(algo) << " page=" << page_size;
    }
  }
}

TEST(AlgorithmsTest, TrsChildOrderingAblationPreservesResults) {
  RandomInstance inst(53, 500, {8, 8, 8});
  Rng rng(54);
  Object q = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(512);
  auto prep = PrepareDataset(&disk, inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prep.ok());
  RSOptions ordered;
  RSOptions unordered;
  unordered.order_children_by_descendants = false;
  auto a = RunReverseSkyline(*prep, inst.space, q, Algorithm::kTRS, ordered);
  auto b =
      RunReverseSkyline(*prep, inst.space, q, Algorithm::kTRS, unordered);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows, b->rows);
}

TEST(AlgorithmsTest, AsymmetricDissimilaritiesHandled) {
  // Non-metric also means possibly asymmetric; all algorithms must agree
  // with the oracle under an asymmetric matrix.
  Rng rng(61);
  std::vector<size_t> cards = {6, 6, 6};
  Dataset data = GenerateUniform(300, cards, rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, rng, {.symmetric = false}));
  }
  Object q = SampleUniformQuery(data, rng);
  auto expected = ReverseSkylineOracle(data, space, q);
  SimulatedDisk disk(512);
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    auto prepared = PrepareDataset(&disk, data, algo, {});
    ASSERT_TRUE(prepared.ok());
    auto result = RunReverseSkyline(*prepared, space, q, algo, {});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows, expected) << AlgorithmName(algo);
  }
}

}  // namespace
}  // namespace nmrs
