#include <string>
#include <vector>

#include "core/bichromatic.h"
#include "core/bnl_disk.h"
#include "core/pipeline.h"
#include "gtest/gtest.h"
#include "storage/disk_view.h"
#include "storage/fault_injection.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

// Every disk-reading algorithm must surface a storage fault on a dataset
// page as a storage-fault Status — no crash, no silently truncated result.
// Table-driven over the full Algorithm enum plus the two entry points that
// don't route through RunReverseSkyline (BNL skyline, bichromatic RS).

class FaultPropagationTest : public ::testing::Test {
 protected:
  FaultPropagationTest() : instance_(17, 800, {5, 6, 7}) {
    Rng rng(91);
    query_ = SampleUniformQuery(instance_.data, rng);
  }

  // Prepares `algo`'s layout on a fresh base disk, then runs it through a
  // FaultyDisk configured with `cfg` over a DiskView — the engine's exact
  // wrapping order.
  Status RunWithFaults(Algorithm algo, const FaultConfig& cfg,
                       PageId* out_bad_page = nullptr) {
    SimulatedDisk base;
    auto prepared = PrepareDataset(&base, instance_.data, algo);
    if (!prepared.ok()) return prepared.status();

    FaultConfig local = cfg;
    if (local.bad_pages.empty() && local.transient_read_p == 0.0 &&
        local.corrupt_p == 0.0) {
      // Default shape: make the middle dataset page permanently bad.
      const PageId bad =
          static_cast<PageId>(base.NumPages(prepared->stored.file()) / 2);
      local.bad_pages.insert({prepared->stored.file(), bad});
      if (out_bad_page != nullptr) *out_bad_page = bad;
    }
    FaultInjector injector(local);
    DiskView view(&base);
    FaultyDisk faulty(&view, &injector, /*stream=*/0);
    PreparedDataset local_prep{
        StoredDataset(&faulty, prepared->stored.file(),
                      prepared->stored.schema(), prepared->stored.num_rows()),
        prepared->attr_order, 0};
    RSOptions rs;
    rs.memory = MemoryBudget{2};
    rs.resilience.retry.max_attempts = 2;
    auto result = RunReverseSkyline(local_prep, instance_.space, query_, algo,
                                    rs);
    return result.ok() ? Status::OK() : result.status();
  }

  RandomInstance instance_;
  Object query_;
};

TEST_F(FaultPropagationTest, BadPageSurfacesFromEveryAlgorithm) {
  for (Algorithm algo :
       {Algorithm::kNaive, Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS,
        Algorithm::kTileSRS, Algorithm::kTileTRS}) {
    PageId bad = 0;
    Status s = RunWithFaults(algo, FaultConfig{}, &bad);
    EXPECT_FALSE(s.ok()) << AlgorithmName(algo)
                         << " masked a permanently bad page";
    EXPECT_TRUE(s.IsStorageFault())
        << AlgorithmName(algo) << " returned " << s;
    EXPECT_TRUE(s.IsDataLoss()) << AlgorithmName(algo) << " returned " << s;
    EXPECT_NE(s.message().find("page " + std::to_string(bad)),
              std::string::npos)
        << AlgorithmName(algo) << ": " << s;
  }
}

TEST_F(FaultPropagationTest, PermanentTransientsSurfaceAsDataLoss) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.transient_read_p = 1.0;  // retries can never help
  for (Algorithm algo : {Algorithm::kNaive, Algorithm::kBRS, Algorithm::kSRS,
                         Algorithm::kTRS}) {
    Status s = RunWithFaults(algo, cfg);
    EXPECT_TRUE(s.IsDataLoss()) << AlgorithmName(algo) << " returned " << s;
    EXPECT_NE(s.message().find("attempts"), std::string::npos) << s;
  }
}

TEST_F(FaultPropagationTest, RareTransientsAreAbsorbedByRetries) {
  // With a generous retry budget and a low fault rate, every algorithm
  // completes and returns the fault-free answer.
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    SimulatedDisk base;
    auto prepared = PrepareDataset(&base, instance_.data, algo);
    ASSERT_TRUE(prepared.ok()) << prepared.status();
    auto expected =
        RunReverseSkyline(*prepared, instance_.space, query_, algo);
    ASSERT_TRUE(expected.ok()) << expected.status();

    // The instance spans only a few pages, so the rate is high enough that
    // the (deterministic) fault stream hits at least one read; the 8-attempt
    // budget still absorbs a p=0.25 fault with overwhelming margin.
    FaultConfig cfg;
    cfg.seed = 23;
    cfg.transient_read_p = 0.25;
    FaultInjector injector(cfg);
    DiskView view(&base);
    FaultyDisk faulty(&view, &injector, 0);
    PreparedDataset local{
        StoredDataset(&faulty, prepared->stored.file(),
                      prepared->stored.schema(), prepared->stored.num_rows()),
        prepared->attr_order, 0};
    RSOptions rs;
    rs.resilience.retry.max_attempts = 8;
    auto result =
        RunReverseSkyline(local, instance_.space, query_, algo, rs);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo) << ": "
                             << result.status();
    EXPECT_EQ(result->rows, expected->rows) << AlgorithmName(algo);
    EXPECT_GT(result->stats.io.transient_retries, 0u) << AlgorithmName(algo);
    EXPECT_GT(result->stats.modeled_backoff_millis, 0.0);
    EXPECT_GT(result->stats.ResponseMillis(),
              result->stats.compute_millis +
                  IoCostModel{}.EstimateMillis(result->stats.io));
  }
}

TEST_F(FaultPropagationTest, BnlDynamicSkylineSurfacesFaults) {
  SimulatedDisk base;
  auto prepared = PrepareDataset(&base, instance_.data, Algorithm::kBRS);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  FaultConfig cfg;
  cfg.bad_pages.insert({prepared->stored.file(), 0});
  FaultInjector injector(cfg);
  DiskView view(&base);
  FaultyDisk faulty(&view, &injector, 0);
  StoredDataset wrapped(&faulty, prepared->stored.file(),
                        prepared->stored.schema(),
                        prepared->stored.num_rows());
  auto result = BnlDynamicSkyline(wrapped, instance_.space, query_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDataLoss()) << result.status();
}

TEST_F(FaultPropagationTest, BichromaticSurfacesFaultsFromEitherSet) {
  SimulatedDisk base;
  auto candidates =
      PrepareDataset(&base, instance_.data, Algorithm::kSRS, {}, "cands");
  ASSERT_TRUE(candidates.ok()) << candidates.status();
  RandomInstance other(18, 500, {5, 6, 7});
  auto competitors =
      PrepareDataset(&base, other.data, Algorithm::kSRS, {}, "comps");
  ASSERT_TRUE(competitors.ok()) << competitors.status();

  for (const FileId victim :
       {candidates->stored.file(), competitors->stored.file()}) {
    FaultConfig cfg;
    cfg.bad_pages.insert({victim, 0});
    FaultInjector injector(cfg);
    DiskView view(&base);
    FaultyDisk faulty(&view, &injector, 0);
    StoredDataset c(&faulty, candidates->stored.file(),
                    candidates->stored.schema(),
                    candidates->stored.num_rows());
    StoredDataset p(&faulty, competitors->stored.file(),
                    competitors->stored.schema(),
                    competitors->stored.num_rows());
    for (const bool tree : {false, true}) {
      auto result = tree ? BichromaticTreeRS(c, p, instance_.space, query_)
                         : BichromaticBlockRS(c, p, instance_.space, query_);
      ASSERT_FALSE(result.ok())
          << (tree ? "tree" : "block") << " masked bad file " << victim;
      EXPECT_TRUE(result.status().IsDataLoss()) << result.status();
    }
  }
}

TEST_F(FaultPropagationTest, StandaloneFailoverRecoversEveryAlgorithm) {
  // Without the QueryEngine: a bad middle page on the primary disk plus
  // one clean failover replica (RSOptions::failover_disks) lets every
  // algorithm return the fault-free rows, with the failover visible in its
  // IO accounting.
  for (Algorithm algo :
       {Algorithm::kNaive, Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS,
        Algorithm::kTileSRS, Algorithm::kTileTRS}) {
    SimulatedDisk base;
    auto prepared = PrepareDataset(&base, instance_.data, algo);
    ASSERT_TRUE(prepared.ok()) << prepared.status();
    auto expected =
        RunReverseSkyline(*prepared, instance_.space, query_, algo);
    ASSERT_TRUE(expected.ok()) << expected.status();

    FaultConfig cfg;
    const PageId bad =
        static_cast<PageId>(base.NumPages(prepared->stored.file()) / 2);
    cfg.bad_pages.insert({prepared->stored.file(), bad});
    FaultInjector injector(cfg);
    DiskView primary(&base);
    DiskView replica(&base);
    FaultyDisk faulty(&primary, &injector, /*stream=*/0,
                      /*fault_ceiling=*/base.next_file_id());
    PreparedDataset local{
        StoredDataset(&faulty, prepared->stored.file(),
                      prepared->stored.schema(), prepared->stored.num_rows()),
        prepared->attr_order, 0};
    RSOptions rs;
    rs.memory = MemoryBudget{2};
    rs.failover_disks = {&replica};
    rs.failover_limit = base.next_file_id();
    auto result =
        RunReverseSkyline(local, instance_.space, query_, algo, rs);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo) << ": "
                             << result.status();
    EXPECT_EQ(result->rows, expected->rows) << AlgorithmName(algo);
    EXPECT_GT(result->stats.io.failovers, 0u) << AlgorithmName(algo);
    EXPECT_GT(result->stats.io.replica_reads[1], 0u) << AlgorithmName(algo);
    EXPECT_EQ(result->stats.io.quarantined_pages, 0u) << AlgorithmName(algo);
  }
}

TEST_F(FaultPropagationTest, ChecksummedDatasetDetectsSilentCorruption) {
  // End-to-end: dataset sealed at prepare time, every read corrupted, the
  // query must fail with kCorruption instead of returning wrong rows.
  SimulatedDisk base;
  PrepareOptions popts;
  popts.checksum_pages = true;
  auto prepared =
      PrepareDataset(&base, instance_.data, Algorithm::kSRS, popts);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  ASSERT_TRUE(prepared->stored.checksum_pages());

  FaultConfig cfg;
  cfg.seed = 2;
  cfg.corrupt_p = 1.0;
  FaultInjector injector(cfg);
  DiskView view(&base);
  FaultyDisk faulty(&view, &injector, 0);
  PreparedDataset local{
      StoredDataset(&faulty, prepared->stored.file(),
                    prepared->stored.schema(), prepared->stored.num_rows(),
                    /*checksum_pages=*/true),
      prepared->attr_order, 0};
  RSOptions rs;
  rs.resilience.checksum_pages = true;
  auto result =
      RunReverseSkyline(local, instance_.space, query_, Algorithm::kSRS, rs);
  ASSERT_FALSE(result.ok()) << "corruption slipped past the checksums";
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
  // Verification fires before any row is decoded, so the corrupted bytes
  // never reach the dominance logic. (The PagedReader-level tests cover
  // the "no verification = silent corruption" half without decoding.)
}

}  // namespace
}  // namespace nmrs
