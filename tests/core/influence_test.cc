#include "core/influence.h"

#include <gtest/gtest.h>

#include "core/skyline.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

TEST(InfluenceTest, RankingMatchesPerQueryOracle) {
  RandomInstance inst(1, 300, {6, 6, 6});
  Rng rng(2);
  std::vector<Object> queries;
  for (int i = 0; i < 6; ++i) {
    queries.push_back(SampleUniformQuery(inst.data, rng));
  }
  SimulatedDisk disk(512);
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prepared.ok());
  auto report = AnalyzeInfluence(*prepared, inst.space, queries);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->ranking.size(), queries.size());

  uint64_t total = 0;
  for (const auto& entry : report->ranking) {
    const auto oracle = ReverseSkylineOracle(inst.data, inst.space,
                                             queries[entry.query_index]);
    EXPECT_EQ(entry.influence, oracle.size());
    total += entry.influence;
  }
  EXPECT_EQ(report->total_influence, total);
  for (size_t i = 1; i < report->ranking.size(); ++i) {
    EXPECT_GE(report->ranking[i - 1].influence,
              report->ranking[i].influence);
  }
}

TEST(InfluenceTest, TopShare) {
  InfluenceReport report;
  report.ranking = {{0, 6, {}}, {1, 3, {}}, {2, 1, {}}};
  report.total_influence = 10;
  EXPECT_DOUBLE_EQ(report.TopShare(1), 0.6);
  EXPECT_DOUBLE_EQ(report.TopShare(2), 0.9);
  EXPECT_DOUBLE_EQ(report.TopShare(10), 1.0);
}

TEST(InfluenceTest, TopShareOfEmptyReport) {
  InfluenceReport report;
  EXPECT_DOUBLE_EQ(report.TopShare(3), 0.0);
}

TEST(InfluenceTest, GiniExtremes) {
  InfluenceReport even;
  even.ranking = {{0, 5, {}}, {1, 5, {}}, {2, 5, {}}, {3, 5, {}}};
  even.total_influence = 20;
  EXPECT_NEAR(even.Gini(), 0.0, 1e-9);

  InfluenceReport skewed;
  skewed.ranking = {{0, 100, {}}, {1, 0, {}}, {2, 0, {}}, {3, 0, {}}};
  skewed.total_influence = 100;
  EXPECT_NEAR(skewed.Gini(), 0.75, 1e-9);  // (n-1)/n for a single holder
}

TEST(InfluenceTest, GiniBetweenZeroAndOne) {
  RandomInstance inst(3, 200, {5, 5});
  Rng rng(4);
  std::vector<Object> queries;
  for (int i = 0; i < 8; ++i) {
    queries.push_back(SampleUniformQuery(inst.data, rng));
  }
  SimulatedDisk disk(512);
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kSRS, {});
  ASSERT_TRUE(prepared.ok());
  auto report =
      AnalyzeInfluence(*prepared, inst.space, queries, Algorithm::kSRS);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->Gini(), 0.0);
  EXPECT_LE(report->Gini(), 1.0);
}

TEST(InfluenceTest, EmptyQueryList) {
  RandomInstance inst(5, 50, {4, 4});
  SimulatedDisk disk(512);
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prepared.ok());
  auto report = AnalyzeInfluence(*prepared, inst.space, {});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ranking.empty());
  EXPECT_EQ(report->total_influence, 0u);
  EXPECT_DOUBLE_EQ(report->Gini(), 0.0);
}

TEST(InfluenceTest, ParallelMatchesSerial) {
  RandomInstance inst(9, 400, {6, 6, 6});
  Rng rng(10);
  std::vector<Object> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(SampleUniformQuery(inst.data, rng));
  }
  SimulatedDisk disk(512);
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prepared.ok());
  auto serial = AnalyzeInfluence(*prepared, inst.space, queries);
  ASSERT_TRUE(serial.ok());
  for (unsigned threads : {1u, 2u, 4u, 0u}) {
    auto parallel = AnalyzeInfluenceParallel(inst.data, inst.space, queries,
                                             Algorithm::kTRS, {}, threads);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    ASSERT_EQ(parallel->ranking.size(), serial->ranking.size());
    EXPECT_EQ(parallel->total_influence, serial->total_influence);
    for (size_t i = 0; i < serial->ranking.size(); ++i) {
      EXPECT_EQ(parallel->ranking[i].query_index,
                serial->ranking[i].query_index);
      EXPECT_EQ(parallel->ranking[i].influence,
                serial->ranking[i].influence);
    }
  }
}

TEST(InfluenceTest, ParallelMoreThreadsThanQueries) {
  RandomInstance inst(11, 60, {4, 4});
  Rng rng(12);
  std::vector<Object> queries = {SampleUniformQuery(inst.data, rng)};
  auto report = AnalyzeInfluenceParallel(inst.data, inst.space, queries,
                                         Algorithm::kSRS, {}, 8);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ranking.size(), 1u);
}

}  // namespace
}  // namespace nmrs
