#include <gtest/gtest.h>

#include "core/block_rs.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

struct QueryFixture {
  RandomInstance inst;
  Object query;
  SimulatedDisk disk;

  explicit QueryFixture(uint64_t seed, uint64_t rows = 3000,
                 std::vector<size_t> cards = {6, 6, 6},
                 size_t page_size = 256)
      : inst(seed, rows, cards), disk(page_size) {
    Rng rng(seed + 1);
    query = SampleUniformQuery(inst.data, rng);
  }
};

TEST(IoAccountingTest, Phase2ReadsScaleWithBatches) {
  QueryFixture s(1);
  auto prepared = PrepareDataset(&s.disk, s.inst.data, Algorithm::kBRS, {});
  ASSERT_TRUE(prepared.ok());
  const uint64_t d_pages = prepared->stored.num_pages();
  RSOptions opts;
  opts.memory.pages = 3;
  auto result = RunReverseSkyline(*prepared, s.inst.space, s.query,
                                  Algorithm::kBRS, opts);
  ASSERT_TRUE(result.ok());
  const QueryStats& st = result->stats;
  // Reads: phase 1 reads D once; phase 2 reads D once per batch plus the
  // survivor pages once.
  const uint64_t survivor_pages =
      prepared->stored.codec().PagesFor(st.phase1_survivors);
  EXPECT_GE(st.io.TotalReads(),
            d_pages * (1 + st.phase2_batches) + survivor_pages);
  // Writes: survivors, re-written at most once per phase-1 batch boundary
  // (partial-page flushes).
  EXPECT_GE(st.io.TotalWrites(), survivor_pages);
  EXPECT_LE(st.io.TotalWrites(), survivor_pages + st.phase1_batches);
}

TEST(IoAccountingTest, PerBatchFlushShowsUpAsRandomIo) {
  // With many phase-1 batches, the per-batch trips between the database
  // and the scratch area must appear as random IO (paper §4.1); with one
  // batch, random IO collapses to a handful of file switches.
  QueryFixture s(2, 6000, {6, 6, 6}, 128);
  auto prepared = PrepareDataset(&s.disk, s.inst.data, Algorithm::kBRS, {});
  ASSERT_TRUE(prepared.ok());

  RSOptions small;
  small.memory.pages = 2;
  RSOptions large;
  large.memory.pages = 100000;
  auto many_batches = RunReverseSkyline(*prepared, s.inst.space, s.query,
                                        Algorithm::kBRS, small);
  auto one_batch = RunReverseSkyline(*prepared, s.inst.space, s.query,
                                     Algorithm::kBRS, large);
  ASSERT_TRUE(many_batches.ok() && one_batch.ok());
  EXPECT_GT(many_batches->stats.phase1_batches,
            one_batch->stats.phase1_batches);
  EXPECT_GT(many_batches->stats.io.TotalRandom(),
            one_batch->stats.io.TotalRandom());
  EXPECT_EQ(many_batches->rows, one_batch->rows);
}

TEST(IoAccountingTest, TrsPacksLargerBatchesThanBrs) {
  // The AL-Tree's prefix compression must let TRS load the same data in
  // fewer (same-budget) phase-1 batches on duplicate-rich data — the §5.3
  // mechanism behind its random-IO advantage.
  QueryFixture s(3, 8000, {5, 5, 5, 5}, 256);
  auto brs_prep = PrepareDataset(&s.disk, s.inst.data, Algorithm::kBRS, {});
  auto trs_prep = PrepareDataset(&s.disk, s.inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(brs_prep.ok() && trs_prep.ok());
  RSOptions opts;
  opts.memory.pages = 3;
  auto brs = RunReverseSkyline(*brs_prep, s.inst.space, s.query,
                               Algorithm::kBRS, opts);
  auto trs = RunReverseSkyline(*trs_prep, s.inst.space, s.query,
                               Algorithm::kTRS, opts);
  ASSERT_TRUE(brs.ok() && trs.ok());
  EXPECT_LE(trs->stats.phase1_batches, brs->stats.phase1_batches);
  EXPECT_LE(trs->stats.io.TotalRandom(), brs->stats.io.TotalRandom());
}

TEST(IoAccountingTest, ChecksSplitByPhaseSumsToTotal) {
  QueryFixture s(4);
  for (Algorithm algo : {Algorithm::kNaive, Algorithm::kBRS, Algorithm::kSRS,
                         Algorithm::kTRS}) {
    auto prepared = PrepareDataset(&s.disk, s.inst.data, algo, {});
    ASSERT_TRUE(prepared.ok());
    auto result =
        RunReverseSkyline(*prepared, s.inst.space, s.query, algo, {});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->stats.phase1_checks + result->stats.phase2_checks,
              result->stats.checks)
        << AlgorithmName(algo);
  }
}

TEST(IoAccountingTest, ResponseAtLeastComputePlusSeqCost) {
  QueryFixture s(5);
  auto prepared = PrepareDataset(&s.disk, s.inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prepared.ok());
  auto result = RunReverseSkyline(*prepared, s.inst.space, s.query,
                                  Algorithm::kTRS, {});
  ASSERT_TRUE(result.ok());
  const IoCostModel model;
  EXPECT_DOUBLE_EQ(
      result->stats.ResponseMillis(model),
      result->stats.compute_millis + model.EstimateMillis(result->stats.io));
}

TEST(IoAccountingTest, MemorySweepShrinksRandomIoMonotonically) {
  // More memory -> fewer batches -> fewer batch-boundary seeks, the
  // Figures 5/6/9 trend. (Allow equality: small datasets saturate.)
  QueryFixture s(6, 10000, {6, 6, 6}, 128);
  auto prepared = PrepareDataset(&s.disk, s.inst.data, Algorithm::kSRS, {});
  ASSERT_TRUE(prepared.ok());
  uint64_t prev_rand = ~uint64_t{0};
  for (uint64_t mem : {2u, 4u, 8u, 16u}) {
    RSOptions opts;
    opts.memory.pages = mem;
    auto result = RunReverseSkyline(*prepared, s.inst.space, s.query,
                                    Algorithm::kSRS, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->stats.io.TotalRandom(), prev_rand) << "mem=" << mem;
    prev_rand = result->stats.io.TotalRandom();
  }
}

}  // namespace
}  // namespace nmrs
