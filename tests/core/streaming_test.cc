#include "core/streaming.h"

#include <gtest/gtest.h>

#include "core/skyline.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RunningExample;

// Oracle: reverse skyline of the current window contents, computed from
// scratch.
std::vector<RowId> WindowOracle(const Schema& schema,
                                const SimilaritySpace& space,
                                const Object& query,
                                const std::vector<std::pair<RowId, Object>>&
                                    window) {
  Dataset data(schema);
  for (const auto& [id, obj] : window) {
    data.AppendRow(obj.values, obj.numerics);
  }
  auto rs_positions = ReverseSkylineOracle(data, space, query);
  std::vector<RowId> out;
  for (RowId pos : rs_positions) out.push_back(window[pos].first);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(StreamingTest, RunningExampleAsStream) {
  RunningExample ex;
  StreamingReverseSkyline stream(ex.space, ex.dataset.schema(), ex.query,
                                 /*window_capacity=*/6);
  for (RowId r = 0; r < ex.dataset.num_rows(); ++r) {
    stream.Push(r, ex.dataset.GetObject(r));
  }
  EXPECT_EQ(stream.CurrentRs(), (std::vector<RowId>{2, 5}));
}

TEST(StreamingTest, ExpiredPrunerLetsVictimRejoin) {
  RunningExample ex;
  // Window of 2: push O1 (a pruner of O2), then O2 (pruned), then O3 —
  // O1 expires, O2's only live pruner is gone, O2 rejoins the RS.
  StreamingReverseSkyline stream(ex.space, ex.dataset.schema(), ex.query, 2);
  stream.Push(0, ex.dataset.GetObject(0));  // O1
  stream.Push(1, ex.dataset.GetObject(1));  // O2, pruned by O1
  EXPECT_EQ(stream.CurrentRs(), (std::vector<RowId>{0}));
  stream.Push(2, ex.dataset.GetObject(2));  // O3 arrives, O1 expires
  EXPECT_EQ(stream.CurrentRs(), (std::vector<RowId>{1, 2}));
}

class StreamingDifferential
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(StreamingDifferential, MatchesOracleAfterEveryPush) {
  const auto [seed, capacity] = GetParam();
  testing::RandomInstance inst(seed, 250, {5, 4, 6});
  StreamingReverseSkyline stream(inst.space, inst.data.schema(),
                                 inst.data.GetObject(0), capacity);
  const Object query = inst.data.GetObject(0);

  std::vector<std::pair<RowId, Object>> window;
  for (RowId r = 0; r < inst.data.num_rows(); ++r) {
    stream.Push(r, inst.data.GetObject(r));
    window.push_back({r, inst.data.GetObject(r)});
    if (window.size() > capacity) window.erase(window.begin());
    ASSERT_EQ(stream.window_size(), window.size());
    EXPECT_EQ(stream.CurrentRs(),
              WindowOracle(inst.data.schema(), inst.space, query, window))
        << "after push " << r << " (capacity " << capacity << ")";
  }
  if (capacity > 1) EXPECT_GT(stream.checks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamingDifferential,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 7, 40, 1000)));

TEST(StreamingTest, DuplicateValuesAcrossWindow) {
  // Duplicates prune each other (when Q differs); when one copy expires,
  // the remaining copy is still pruned by yet another copy, etc.
  Schema schema = Schema::Categorical({3});
  Rng rng(9);
  SimilaritySpace space = MakeRandomSpace({3}, rng);
  StreamingReverseSkyline stream(space, schema, Object({0}), 3);
  for (RowId r = 0; r < 10; ++r) {
    stream.Push(r, Object({1}));
    // All window objects are identical; each is pruned by its twin
    // whenever more than one is live.
    if (stream.window_size() > 1) {
      EXPECT_TRUE(stream.CurrentRs().empty()) << "r=" << r;
    } else {
      EXPECT_EQ(stream.CurrentRs().size(), 1u);
    }
  }
}

TEST(StreamingTest, WindowOfOne) {
  // A single-object window: the sole object is always in the RS.
  Schema schema = Schema::Categorical({4});
  Rng rng(10);
  SimilaritySpace space = MakeRandomSpace({4}, rng);
  StreamingReverseSkyline stream(space, schema, Object({0}), 1);
  for (RowId r = 0; r < 20; ++r) {
    stream.Push(r, Object({static_cast<ValueId>(r % 4)}));
    EXPECT_EQ(stream.CurrentRs(), (std::vector<RowId>{r}));
  }
}

TEST(StreamingTest, MixedNumericStream) {
  Rng rng(11);
  Dataset data = GenerateMixed(120, {4}, 1, 6, rng);
  SimilaritySpace space;
  space.AddCategorical(MakeRandomMatrix(4, rng));
  space.AddNumeric(NumericDissimilarity());
  const Object query = SampleUniformQuery(data, rng);

  StreamingReverseSkyline stream(space, data.schema(), query, 25);
  std::vector<std::pair<RowId, Object>> window;
  for (RowId r = 0; r < data.num_rows(); ++r) {
    stream.Push(r, data.GetObject(r));
    window.push_back({r, data.GetObject(r)});
    if (window.size() > 25) window.erase(window.begin());
    if (r % 10 == 0) {
      EXPECT_EQ(stream.CurrentRs(),
                WindowOracle(data.schema(), space, query, window))
          << "after push " << r;
    }
  }
}

}  // namespace
}  // namespace nmrs
