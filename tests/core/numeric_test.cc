#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/skyline.h"
#include "data/generators.h"

namespace nmrs {
namespace {

// Mixed categorical + numeric instance (paper §6).
struct MixedInstance {
  Dataset data;
  SimilaritySpace space;

  MixedInstance(uint64_t seed, uint64_t rows, std::vector<size_t> cat_cards,
                size_t num_numeric, size_t buckets)
      : data(Schema::Categorical({1})) {
    Rng rng(seed);
    Rng data_rng = rng.Fork();
    Rng space_rng = rng.Fork();
    data = GenerateMixed(rows, cat_cards, num_numeric, buckets, data_rng);
    for (size_t card : cat_cards) {
      space.AddCategorical(MakeRandomMatrix(card, space_rng));
    }
    for (size_t i = 0; i < num_numeric; ++i) {
      space.AddNumeric(NumericDissimilarity());
    }
  }

  Object RandomQuery(Rng& rng) const { return SampleUniformQuery(data, rng); }
};

class NumericBucketsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(NumericBucketsTest, TrsMatchesOracleAcrossBucketCounts) {
  const size_t buckets = GetParam();
  MixedInstance inst(70 + buckets, 250, {5, 4}, 2, buckets);
  Rng rng(71);
  for (int qi = 0; qi < 3; ++qi) {
    Object q = inst.RandomQuery(rng);
    auto expected = ReverseSkylineOracle(inst.data, inst.space, q);
    SimulatedDisk disk(1024);
    for (Algorithm algo :
         {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
      auto prepared = PrepareDataset(&disk, inst.data, algo, {});
      ASSERT_TRUE(prepared.ok());
      RSOptions opts;
      opts.memory.pages = 3;
      auto result = RunReverseSkyline(*prepared, inst.space, q, algo, opts);
      ASSERT_TRUE(result.ok()) << AlgorithmName(algo);
      EXPECT_EQ(result->rows, expected)
          << AlgorithmName(algo) << " buckets=" << buckets << " q" << qi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, NumericBucketsTest,
                         ::testing::Values(1, 2, 4, 8, 32));

TEST(NumericTest, AllNumericSchema) {
  MixedInstance inst(81, 200, {}, 3, 6);
  Rng rng(82);
  Object q = inst.RandomQuery(rng);
  auto expected = ReverseSkylineOracle(inst.data, inst.space, q);
  SimulatedDisk disk(1024);
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prepared.ok());
  auto result =
      RunReverseSkyline(*prepared, inst.space, q, Algorithm::kTRS, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows, expected);
}

TEST(NumericTest, CoarseBucketsProduceMorePhase1Survivors) {
  // §6: bucket checks are conservative; coarser buckets weaken phase-1
  // pruning, producing at least as many survivors to refine in phase 2.
  MixedInstance coarse(91, 400, {4}, 2, 2);
  MixedInstance fine(91, 400, {4}, 2, 64);  // same seed -> same numerics? No:
  // bucket count affects only discretization, but the generator draws the
  // same values for the same seed regardless of bucket count.
  Rng rng(92);
  Object qc = coarse.RandomQuery(rng);
  Rng rng2(92);
  Object qf = fine.RandomQuery(rng2);

  SimulatedDisk disk(1024);
  auto prep_c = PrepareDataset(&disk, coarse.data, Algorithm::kTRS, {});
  auto prep_f = PrepareDataset(&disk, fine.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prep_c.ok() && prep_f.ok());
  auto rc = RunReverseSkyline(*prep_c, coarse.space, qc, Algorithm::kTRS, {});
  auto rf = RunReverseSkyline(*prep_f, fine.space, qf, Algorithm::kTRS, {});
  ASSERT_TRUE(rc.ok() && rf.ok());
  // Same final result (both exact), more or equal survivors when coarse.
  EXPECT_EQ(rc->rows, rf->rows);
  EXPECT_GE(rc->stats.phase1_survivors, rf->stats.phase1_survivors);
}

TEST(NumericTest, SubsetOverMixedAttributes) {
  MixedInstance inst(95, 200, {5, 5}, 2, 8);
  Rng rng(96);
  Object q = inst.RandomQuery(rng);
  // Subset = one categorical + one numeric attribute.
  const std::vector<AttrId> sel = {1, 3};
  auto expected = ReverseSkylineOracle(inst.data, inst.space, q, sel);
  SimulatedDisk disk(1024);
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prepared.ok());
  RSOptions opts;
  opts.selected_attrs = sel;
  auto result =
      RunReverseSkyline(*prepared, inst.space, q, Algorithm::kTRS, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows, expected);
}

TEST(NumericTest, ScaledNumericDissimilarity) {
  // Non-unit scale exercises the scale handling in interval bounds.
  Rng rng(97);
  Dataset data = GenerateMixed(150, {4}, 1, 8, rng);
  SimilaritySpace space;
  space.AddCategorical(MakeRandomMatrix(4, rng));
  space.AddNumeric(NumericDissimilarity(0.01));
  Object q = SampleUniformQuery(data, rng);
  auto expected = ReverseSkylineOracle(data, space, q);
  SimulatedDisk disk(1024);
  auto prepared = PrepareDataset(&disk, data, Algorithm::kTRS, {});
  ASSERT_TRUE(prepared.ok());
  auto result = RunReverseSkyline(*prepared, space, q, Algorithm::kTRS, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows, expected);
}

}  // namespace
}  // namespace nmrs
