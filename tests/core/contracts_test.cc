// Contract tests: the NMRS_CHECK-guarded preconditions of the public API
// must abort loudly (never corrupt silently). Death tests pin that down.
#include <gtest/gtest.h>

#include "altree/al_tree.h"
#include "core/streaming.h"
#include "core/uncertain.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "ops/weighted_distance.h"
#include "order/attribute_order.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

TEST(ContractsDeathTest, PermutedRejectsWrongLength) {
  Dataset d(Schema::Categorical({3}));
  d.AppendCategoricalRow({0});
  d.AppendCategoricalRow({1});
  EXPECT_DEATH(d.Permuted({0}), "NMRS_CHECK");
}

TEST(ContractsDeathTest, PermutedRejectsOutOfRangeIndex) {
  Dataset d(Schema::Categorical({3}));
  d.AppendCategoricalRow({0});
  EXPECT_DEATH(d.Permuted({5}), "NMRS_CHECK");
}

TEST(ContractsDeathTest, AppendRowRejectsWrongArity) {
  Dataset d(Schema::Categorical({3, 3}));
  EXPECT_DEATH(d.AppendCategoricalRow({0}), "NMRS_CHECK");
}

TEST(ContractsDeathTest, ALTreeRejectsMismatchedAttrOrder) {
  Schema s = Schema::Categorical({3, 3});
  EXPECT_DEATH(ALTree(s, {0}), "NMRS_CHECK");
}

TEST(ContractsDeathTest, ALTreeTempRestoreWithoutRemove) {
  Schema s = Schema::Categorical({2, 2});
  ALTree tree(s, IdentityOrder(s));
  const ValueId row[] = {0, 0};
  tree.Insert(1, row, nullptr);
  const ALTree::NodeId leaf = tree.FindLeaf(row);
  EXPECT_DEATH(tree.TempRestore(leaf), "NMRS_CHECK");
}

TEST(ContractsDeathTest, StreamingRejectsZeroWindow) {
  Rng rng(1);
  SimilaritySpace space = MakeRandomSpace({3}, rng);
  Schema schema = Schema::Categorical({3});
  EXPECT_DEATH(StreamingReverseSkyline(space, schema, Object({0}), 0),
               "NMRS_CHECK");
}

TEST(ContractsDeathTest, UncertainRejectsBadProbabilities) {
  RandomInstance inst(2, 10, {3});
  Object q({0});
  std::vector<double> bad(inst.data.num_rows(), 1.5);
  EXPECT_DEATH(
      UncertainReverseSkyline(inst.data, inst.space, q, bad, 0.5),
      "NMRS_CHECK");
  std::vector<double> wrong_size(3, 0.5);
  EXPECT_DEATH(UncertainReverseSkyline(inst.data, inst.space, q, wrong_size,
                                       0.5),
               "NMRS_CHECK");
}

TEST(ContractsDeathTest, UncertainRejectsBadThreshold) {
  RandomInstance inst(3, 10, {3});
  Object q({0});
  std::vector<double> p(inst.data.num_rows(), 0.5);
  EXPECT_DEATH(UncertainReverseSkyline(inst.data, inst.space, q, p, 0.0),
               "NMRS_CHECK");
  EXPECT_DEATH(UncertainReverseSkyline(inst.data, inst.space, q, p, 1.5),
               "NMRS_CHECK");
}

TEST(ContractsDeathTest, WeightedDistanceRejectsNonPositiveWeights) {
  EXPECT_DEATH(WeightedDistance({1.0, 0.0}), "NMRS_CHECK");
  EXPECT_DEATH(WeightedDistance({-0.5}), "NMRS_CHECK");
}

}  // namespace
}  // namespace nmrs
