#include "core/query_distance_table.h"

#include <gtest/gtest.h>

#include "core/dominance.h"
#include "data/generators.h"
#include "sim/matrix_overlay.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RunningExample;

// An asymmetric two-attribute space so FromQuery (row) and ToQuery (column)
// are genuinely different arrays.
SimilaritySpace MakeAsymmetricSpace(const std::vector<size_t>& cards,
                                    Rng& rng) {
  RandomMatrixOptions opts;
  opts.symmetric = false;
  SimilaritySpace space;
  for (size_t k : cards) {
    space.AddCategorical(MakeRandomMatrix(k, rng, opts));
  }
  return space;
}

TEST(QueryDistanceTableTest, MatchesCatDistInBothDirections) {
  Rng rng(42);
  const std::vector<size_t> cards = {5, 9};
  SimilaritySpace space = MakeAsymmetricSpace(cards, rng);
  Schema schema = Schema::Categorical(cards);
  const Object query({2, 7});
  const std::vector<AttrId> selected = ResolveSelectedAttrs(schema, {});

  QueryDistanceTable table(space, schema, query, selected);
  ASSERT_EQ(table.num_selected(), 2u);
  EXPECT_EQ(table.selected(), selected);
  bool saw_asymmetry = false;
  for (size_t k = 0; k < selected.size(); ++k) {
    const AttrId a = selected[k];
    const double* from = table.FromQuery(k);
    const double* to = table.ToQuery(k);
    ASSERT_NE(from, nullptr);
    ASSERT_NE(to, nullptr);
    for (ValueId v = 0; v < cards[a]; ++v) {
      EXPECT_EQ(from[v], space.CatDist(a, query.values[a], v))
          << "attr " << a << " value " << v;
      EXPECT_EQ(to[v], space.CatDist(a, v, query.values[a]))
          << "attr " << a << " value " << v;
      if (from[v] != to[v]) saw_asymmetry = true;
    }
  }
  // With random asymmetric matrices the two directions must differ
  // somewhere, otherwise this test is not exercising anything.
  EXPECT_TRUE(saw_asymmetry);
}

TEST(QueryDistanceTableTest, RespectsSelectionOrder) {
  Rng rng(7);
  const std::vector<size_t> cards = {4, 6, 3};
  SimilaritySpace space = MakeAsymmetricSpace(cards, rng);
  Schema schema = Schema::Categorical(cards);
  const Object query({1, 5, 0});

  // Positions index the *selection*, not the schema: k=0 -> attr 2.
  const std::vector<AttrId> selected = {2, 0};
  QueryDistanceTable table(space, schema, query, selected);
  ASSERT_EQ(table.num_selected(), 2u);
  for (ValueId v = 0; v < cards[2]; ++v) {
    EXPECT_EQ(table.FromQuery(0)[v], space.CatDist(2, 0, v));
  }
  for (ValueId v = 0; v < cards[0]; ++v) {
    EXPECT_EQ(table.FromQuery(1)[v], space.CatDist(0, 1, v));
  }
}

TEST(QueryDistanceTableTest, NumericAttributesHaveNoRows) {
  Schema schema = Schema::Categorical({3});
  AttributeInfo num;
  num.is_numeric = true;
  num.cardinality = 4;
  num.range = {0.0, 100.0};
  schema.AddAttribute(num);

  SimilaritySpace space;
  DissimilarityMatrix m(3);
  m.SetSymmetric(0, 1, 0.4);
  m.SetSymmetric(0, 2, 0.9);
  m.SetSymmetric(1, 2, 0.2);
  space.AddCategorical(std::move(m));
  space.AddNumeric(NumericDissimilarity());

  Dataset d(schema);
  const Object query = d.MakeObject({1, 0}, {0.0, 30.0});
  const std::vector<AttrId> selected = ResolveSelectedAttrs(schema, {});
  QueryDistanceTable table(space, schema, query, selected);
  EXPECT_NE(table.FromQuery(0), nullptr);
  EXPECT_NE(table.ToQuery(0), nullptr);
  EXPECT_EQ(table.FromQuery(1), nullptr);
  EXPECT_EQ(table.ToQuery(1), nullptr);
}

// The memoized PruneContext path must be bit-identical to the plain path:
// same prune verdicts, same check counts, same cached query distances.
TEST(QueryDistanceTableTest, PruneContextWithTableIsBitIdentical) {
  RunningExample ex;
  const Schema& schema = ex.dataset.schema();
  const std::vector<AttrId> selected = ResolveSelectedAttrs(schema, {});
  QueryDistanceTable table(ex.space, schema, ex.query, selected);

  PruneContext plain(ex.space, schema, ex.query, selected);
  PruneContext memo(ex.space, schema, ex.query, selected, &table);
  ASSERT_EQ(memo.table(), &table);

  for (RowId x = 0; x < ex.dataset.num_rows(); ++x) {
    plain.SetCandidate(ex.dataset.RowValues(x), nullptr);
    memo.SetCandidate(ex.dataset.RowValues(x), nullptr);
    for (size_t k = 0; k < selected.size(); ++k) {
      EXPECT_EQ(plain.QueryDist(k), memo.QueryDist(k))
          << "candidate " << x << " attr position " << k;
    }
    EXPECT_EQ(plain.QueryAtCandidate(), memo.QueryAtCandidate());
    for (RowId y = 0; y < ex.dataset.num_rows(); ++y) {
      uint64_t plain_checks = 0, memo_checks = 0;
      const bool p =
          plain.Prunes(ex.dataset.RowValues(y), nullptr, &plain_checks);
      const bool m =
          memo.Prunes(ex.dataset.RowValues(y), nullptr, &memo_checks);
      EXPECT_EQ(p, m) << "pruner " << y << " candidate " << x;
      EXPECT_EQ(plain_checks, memo_checks)
          << "pruner " << y << " candidate " << x;
    }
  }
}

// Same equivalence on a larger random instance with an asymmetric space and
// a subset selection — the configuration the hand example cannot cover.
TEST(QueryDistanceTableTest, MemoEquivalenceOnRandomAsymmetricInstance) {
  Rng rng(1234);
  const std::vector<size_t> cards = {6, 7, 8, 5};
  SimilaritySpace space = MakeAsymmetricSpace(cards, rng);
  Dataset data = GenerateUniform(400, cards, rng);
  const std::vector<AttrId> selected = {3, 1, 0};

  for (int qi = 0; qi < 4; ++qi) {
    const Object query = SampleUniformQuery(data, rng);
    QueryDistanceTable table(space, data.schema(), query, selected);
    PruneContext plain(space, data.schema(), query, selected);
    PruneContext memo(space, data.schema(), query, selected, &table);
    for (RowId x = 0; x < data.num_rows(); x += 7) {
      plain.SetCandidate(data.RowValues(x), nullptr);
      memo.SetCandidate(data.RowValues(x), nullptr);
      for (RowId y = 0; y < data.num_rows(); y += 11) {
        uint64_t pc = 0, mc = 0;
        EXPECT_EQ(plain.Prunes(data.RowValues(y), nullptr, &pc),
                  memo.Prunes(data.RowValues(y), nullptr, &mc));
        EXPECT_EQ(pc, mc);
      }
    }
  }
}

// Pins the operand orientation of the cached per-candidate arrays on an
// asymmetric matrix — the contract both the scalar memoized Prunes loop
// and the kernel gather path (core/dominance_kernel.h) rely on:
//   - FromQuery(k)[v]        == d_a(q_a, v)   (query is the row index)
//   - PruneContext::QueryDist == d_a(q_a, x_a)
//   - CandidateColumn(k)[v]  == d_a(v, x_a)   (candidate is the column
//     index; the pruner value v is the row index)
// A transposed read of any of these would go unnoticed on the symmetric
// matrices most tests use.
TEST(QueryDistanceTableTest, AsymmetricOrientationOfCandidateArrays) {
  Rng rng(20260807);
  const std::vector<size_t> cards = {6, 4};
  SimilaritySpace space = MakeAsymmetricSpace(cards, rng);
  Schema schema = Schema::Categorical(cards);
  const Object query({3, 1});
  const std::vector<AttrId> selected = ResolveSelectedAttrs(schema, {});
  QueryDistanceTable table(space, schema, query, selected);
  PruneContext ctx(space, schema, query, selected, &table);

  bool saw_asymmetry = false;
  std::vector<ValueId> x = {0, 0};
  for (x[0] = 0; x[0] < cards[0]; ++x[0]) {
    for (x[1] = 0; x[1] < cards[1]; ++x[1]) {
      ctx.SetCandidate(x.data(), nullptr);
      for (size_t k = 0; k < selected.size(); ++k) {
        const AttrId a = selected[k];
        ASSERT_EQ(ctx.QueryDist(k), space.CatDist(a, query.values[a], x[a]))
            << "threshold must be d(q, x), not d(x, q)";
        const double* col = ctx.CandidateColumn(k);
        for (ValueId v = 0; v < cards[a]; ++v) {
          ASSERT_EQ(col[v], space.CatDist(a, v, x[a]))
              << "lhs must be d(v, x), not d(x, v) — attr " << a
              << " value " << v;
          if (space.CatDist(a, v, x[a]) != space.CatDist(a, x[a], v)) {
            saw_asymmetry = true;
          }
        }
      }
    }
  }
  // The random matrices must actually distinguish the two orientations.
  EXPECT_TRUE(saw_asymmetry);
}

// Extends the orientation pin to overlaid tables: every delta patches
// exactly one direction of a pair, so a transposed overlay read would
// either miss the patch entirely or apply it to the wrong orientation.
// Both the patched rows/columns of the table and the per-candidate patched
// column scratch in PruneContext must agree with the materialized
// per-user space everywhere.
TEST(QueryDistanceTableTest, AsymmetricOrientationWithOverlay) {
  Rng rng(20260807);
  const std::vector<size_t> cards = {6, 4};
  SimilaritySpace space = MakeAsymmetricSpace(cards, rng);
  Schema schema = Schema::Categorical(cards);
  const Object query({3, 1});
  const std::vector<AttrId> selected = ResolveSelectedAttrs(schema, {});

  MatrixOverlay overlay(space);
  ASSERT_TRUE(overlay.Set(0, 2, 5, 7.25).ok());   // transpose (5,2) untouched
  ASSERT_TRUE(overlay.Set(0, 3, 1, 3.5).ok());    // query row: q_0 == 3
  ASSERT_TRUE(overlay.Set(1, 1, 0, 9.75).ok());   // query row: q_1 == 1
  ASSERT_TRUE(overlay.Set(1, 2, 1, 4.125).ok());  // query column
  SimilaritySpace patched = overlay.BuildPatchedSpace();
  // The patched directions differ from base and from their transposes,
  // so a transposed or unpatched read cannot slip through below.
  ASSERT_NE(patched.CatDist(0, 2, 5), space.CatDist(0, 2, 5));
  ASSERT_NE(patched.CatDist(0, 2, 5), patched.CatDist(0, 5, 2));
  ASSERT_NE(patched.CatDist(1, 1, 0), patched.CatDist(1, 0, 1));

  QueryDistanceTable table(space, schema, query, selected, &overlay);
  ASSERT_EQ(table.overlay(), &overlay);
  PruneContext ctx(space, schema, query, selected, &table);

  std::vector<ValueId> x = {0, 0};
  for (x[0] = 0; x[0] < cards[0]; ++x[0]) {
    for (x[1] = 0; x[1] < cards[1]; ++x[1]) {
      ctx.SetCandidate(x.data(), nullptr);
      for (size_t k = 0; k < selected.size(); ++k) {
        const AttrId a = selected[k];
        ASSERT_EQ(ctx.QueryDist(k),
                  patched.CatDist(a, query.values[a], x[a]))
            << "threshold must be patched d(q, x) — attr " << a;
        ASSERT_EQ(table.FromQuery(k)[x[a]],
                  patched.CatDist(a, query.values[a], x[a]));
        ASSERT_EQ(table.ToQuery(k)[x[a]],
                  patched.CatDist(a, x[a], query.values[a]));
        const double* col = ctx.CandidateColumn(k);
        for (ValueId v = 0; v < cards[a]; ++v) {
          ASSERT_EQ(col[v], patched.CatDist(a, v, x[a]))
              << "lhs must be patched d(v, x) — attr " << a << " value "
              << v << " candidate " << x[a];
        }
      }
    }
  }
}

}  // namespace
}  // namespace nmrs
