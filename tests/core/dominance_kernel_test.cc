// Unit tests of the block dominance kernels (core/dominance_kernel.h):
// bit-exact verdict and accounting equivalence against the scalar
// PruneContext::Prunes loop on both dispatch paths, the columnar
// transpose, and — with asymmetric matrices — the gather orientation
// (which operand indexes the matrix row vs column).
#include "core/dominance_kernel.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/dominance.h"
#include "core/query_distance_table.h"
#include "data/columnar_batch.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RunningExample;

RowBatch BatchFromDataset(const Dataset& data) {
  RowBatch batch(data.schema().num_attributes(),
                 data.schema().NumNumeric() > 0);
  for (RowId r = 0; r < data.num_rows(); ++r) {
    batch.Append(r, data.RowValues(r), data.RowNumerics(r));
  }
  return batch;
}

TEST(ColumnarBatchTest, TransposeMatchesRowMajor) {
  Rng rng(99);
  Dataset data = GenerateMixed(137, {5, 9, 3}, 2, 4, rng);
  RowBatch rows = BatchFromDataset(data);
  ColumnarBatch cols;
  cols.Build(rows);
  ASSERT_EQ(cols.size(), rows.size());
  ASSERT_EQ(cols.num_attrs(), rows.num_attrs());
  ASSERT_TRUE(cols.has_numerics());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(cols.id(i), rows.id(i));
    for (AttrId a = 0; a < rows.num_attrs(); ++a) {
      EXPECT_EQ(cols.values(a)[i], rows.value(i, a)) << i << "/" << a;
      EXPECT_EQ(cols.numerics(a)[i], rows.numeric(i, a)) << i << "/" << a;
    }
  }
  // Rebuild from a smaller batch must fully replace the old view.
  RowBatch two(rows.num_attrs(), true);
  two.Append(rows.id(0), rows.row_values(0), rows.row_numerics(0));
  cols.Build(two);
  EXPECT_EQ(cols.size(), 1u);
}

TEST(ColumnarBatchTest, BuildFromColumns) {
  const std::vector<std::vector<ValueId>> columns = {{1, 2, 3}, {4, 5, 6}};
  const std::vector<RowId> ids = {10, 11, 12};
  ColumnarBatch cols;
  cols.BuildFromColumns(3, columns, ids);
  EXPECT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols.num_attrs(), 2u);
  EXPECT_FALSE(cols.has_numerics());
  EXPECT_EQ(cols.values(0)[2], 3u);
  EXPECT_EQ(cols.values(1)[0], 4u);
  EXPECT_EQ(cols.id(1), 11u);
}

// Every row verdict and per-row check count of the kernel must equal the
// scalar early-aborting loop, on both dispatch paths.
void ExpectKernelMatchesScalar(const Dataset& data,
                               const SimilaritySpace& space,
                               const Object& query,
                               const std::vector<AttrId>& selection) {
  const Schema& schema = data.schema();
  const std::vector<AttrId> selected =
      ResolveSelectedAttrs(schema, selection);
  QueryDistanceTable table(space, schema, query, selected);
  PruneContext ctx(space, schema, query, selected, &table);
  RowBatch rows = BatchFromDataset(data);
  ColumnarBatch cols;
  cols.Build(rows);

  for (bool force_scalar : {false, true}) {
    ForceScalarKernelDispatchForTest(force_scalar);
    DominanceKernel kernel(ctx, cols);
    if (force_scalar) {
      ASSERT_EQ(kernel.dispatch(), KernelDispatch::kScalar);
    }
    for (RowId x = 0; x < data.num_rows(); x += 3) {
      ctx.SetCandidate(data.RowValues(x), data.RowNumerics(x));
      kernel.BeginCandidate();
      for (RowId y = 0; y < data.num_rows(); ++y) {
        uint64_t scalar_checks = 0;
        const bool scalar_prunes =
            ctx.Prunes(data.RowValues(y), data.RowNumerics(y),
                       &scalar_checks);
        EXPECT_EQ(kernel.RowPrunes(y), scalar_prunes)
            << "x=" << x << " y=" << y << " forced=" << force_scalar;
        EXPECT_EQ(kernel.RowChecks(y), scalar_checks)
            << "x=" << x << " y=" << y << " forced=" << force_scalar;
      }
    }
    EXPECT_GT(kernel.kernel_checks(), 0u);
  }
  ForceScalarKernelDispatchForTest(false);
}

TEST(DominanceKernelTest, MatchesScalarOnRunningExample) {
  RunningExample ex;
  ExpectKernelMatchesScalar(ex.dataset, ex.space, ex.query, {});
}

TEST(DominanceKernelTest, MatchesScalarOnRandomAsymmetricInstances) {
  Rng rng(2026);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<size_t> cards(1 + rng.Uniform(4));
    for (auto& c : cards) c = 2 + rng.Uniform(40);
    Rng drng = rng.Fork();
    Rng srng = rng.Fork();
    Dataset data = GenerateUniform(40 + rng.Uniform(120), cards, drng);
    SimilaritySpace space;
    for (size_t c : cards) {
      space.AddCategorical(MakeRandomMatrix(c, srng, {.symmetric = false}));
    }
    Object q = SampleUniformQuery(data, rng);
    std::vector<AttrId> sel;
    if (rng.Bernoulli(0.4)) {
      for (AttrId a = 0; a < cards.size(); ++a) {
        if (rng.Bernoulli(0.6)) sel.push_back(a);
      }
    }
    ExpectKernelMatchesScalar(data, space, q, sel);
  }
}

TEST(DominanceKernelTest, MatchesScalarOnMixedNumericInstance) {
  Rng rng(31337);
  Rng drng = rng.Fork();
  Rng srng = rng.Fork();
  Dataset data = GenerateMixed(180, {6, 11}, 2, 4, drng);
  SimilaritySpace space;
  space.AddCategorical(MakeRandomMatrix(6, srng, {.symmetric = false}));
  space.AddCategorical(MakeRandomMatrix(11, srng, {.symmetric = false}));
  space.AddNumeric(NumericDissimilarity(0.7));
  space.AddNumeric(NumericDissimilarity(1.3));
  Object q = SampleUniformQuery(data, rng);
  ExpectKernelMatchesScalar(data, space, q, {});
  ExpectKernelMatchesScalar(data, space, q, {3, 0});
}

// Pins the gather orientation on an asymmetric 2-value matrix: the lane
// value for row Y against candidate X must be d(y, x) — matrix row y,
// column x — never the transposed d(x, y). The two orientations give
// opposite verdicts here, so a flipped gather cannot pass.
TEST(DominanceKernelTest, GatherOrientationOnAsymmetricMatrix) {
  DissimilarityMatrix mat(2);
  mat.Set(0, 1, 0.9);  // d(0 -> 1)
  mat.Set(1, 0, 0.1);  // d(1 -> 0)
  SimilaritySpace space;
  space.AddCategorical(std::move(mat));
  Schema schema = Schema::Categorical({2});

  // Query q=1, candidate x=0: threshold d(q, x) = d(1, 0) = 0.1.
  // Pruner y=1: lhs = d(y, x) = d(1, 0) = 0.1 -> not < 0.1, no strict
  // attribute, so y must NOT prune. The flipped lhs d(x, y) = 0.9 would
  // also not prune (violation), but for y=0: lhs = d(0, 0) = 0 < 0.1
  // prunes, while flipped d(0, 0) = 0 agrees — so pin the threshold side
  // too with query q=0, candidate x=1: threshold d(0, 1) = 0.9, y=0 has
  // lhs d(0, 1) = 0.9 (no strict), flipped d(1, 0) = 0.1 would prune.
  const std::vector<AttrId> selected = {0};
  RowBatch rows(1, false);
  const ValueId v0 = 0, v1 = 1;
  rows.Append(0, &v0, nullptr);
  rows.Append(1, &v1, nullptr);
  ColumnarBatch cols;
  cols.Build(rows);

  for (bool force_scalar : {false, true}) {
    ForceScalarKernelDispatchForTest(force_scalar);
    {
      Object q({1});
      QueryDistanceTable table(space, schema, q, selected);
      PruneContext ctx(space, schema, q, selected, &table);
      ValueId x = 0;
      ctx.SetCandidate(&x, nullptr);
      ASSERT_EQ(ctx.QueryDist(0), 0.1);
      DominanceKernel kernel(ctx, cols);
      EXPECT_TRUE(kernel.RowPrunes(0));    // d(0,0)=0 < 0.1
      EXPECT_FALSE(kernel.RowPrunes(1));   // d(1,0)=0.1, nothing strict
    }
    {
      Object q({0});
      QueryDistanceTable table(space, schema, q, selected);
      PruneContext ctx(space, schema, q, selected, &table);
      ValueId x = 1;
      ctx.SetCandidate(&x, nullptr);
      ASSERT_EQ(ctx.QueryDist(0), 0.9);
      // y=0: lhs = d(0,1) = 0.9 == threshold, not strict -> no prune.
      // A transposed gather would read d(1,0) = 0.1 and prune.
      DominanceKernel kernel(ctx, cols);
      EXPECT_FALSE(kernel.RowPrunes(0));
      EXPECT_TRUE(kernel.RowPrunes(1) == (space.CatDist(0, 1, 1) < 0.9))
          << "self-distance row must follow the definition";
    }
  }
  ForceScalarKernelDispatchForTest(false);
}

// The Find* adapters reproduce the scalar scan loops exactly: same pair and
// check totals, same first-pruner stop, in forward and expanding-ring order.
TEST(DominanceKernelTest, FindAdaptersMatchScalarScans) {
  Rng rng(555);
  std::vector<size_t> cards = {7, 5, 9};
  Rng drng = rng.Fork();
  Rng srng = rng.Fork();
  Dataset data = GenerateNormal(150, cards, drng);
  SimilaritySpace space;
  for (size_t c : cards) {
    space.AddCategorical(MakeRandomMatrix(c, srng, {.symmetric = false}));
  }
  const Schema& schema = data.schema();
  const std::vector<AttrId> selected = ResolveSelectedAttrs(schema, {});
  Object q = SampleRowQuery(data, rng);
  QueryDistanceTable table(space, schema, q, selected);
  PruneContext ctx(space, schema, q, selected, &table);
  RowBatch rows = BatchFromDataset(data);
  ColumnarBatch cols;
  cols.Build(rows);
  DominanceKernel kernel(ctx, cols);

  const size_t n = rows.size();
  for (RowId x = 0; x < n; x += 5) {
    ctx.SetCandidate(data.RowValues(x), nullptr);

    // Scalar forward scan, skipping the candidate's own id.
    uint64_t s_pairs = 0, s_checks = 0;
    bool s_found = false;
    for (size_t j = 0; j < n && !s_found; ++j) {
      if (rows.id(j) == x) continue;
      ++s_pairs;
      s_found = ctx.Prunes(rows.row_values(j), nullptr, &s_checks);
    }
    kernel.BeginCandidate();
    uint64_t k_pairs = 0, k_checks = 0;
    EXPECT_EQ(kernel.FindPrunerForward(0, n, x, &k_pairs, &k_checks),
              s_found);
    EXPECT_EQ(k_pairs, s_pairs) << "x=" << x;
    EXPECT_EQ(k_checks, s_checks) << "x=" << x;

    // Scalar expanding-ring scan around the candidate's position.
    s_pairs = s_checks = 0;
    s_found = false;
    const size_t center = x;
    for (size_t off = 1; off < n && !s_found; ++off) {
      if (off <= center && rows.id(center - off) != x) {
        ++s_pairs;
        s_found = ctx.Prunes(rows.row_values(center - off), nullptr,
                             &s_checks);
      }
      if (!s_found && center + off < n && rows.id(center + off) != x) {
        ++s_pairs;
        s_found =
            ctx.Prunes(rows.row_values(center + off), nullptr, &s_checks);
      }
    }
    kernel.BeginCandidate();
    k_pairs = k_checks = 0;
    EXPECT_EQ(kernel.FindPrunerRing(center, x, &k_pairs, &k_checks),
              s_found);
    EXPECT_EQ(k_pairs, s_pairs) << "ring x=" << x;
    EXPECT_EQ(k_checks, s_checks) << "ring x=" << x;
  }
}

TEST(DominanceKernelTest, DispatchNamesAndForceHook) {
  EXPECT_STREQ(KernelDispatchName(KernelDispatch::kScalar), "scalar");
  EXPECT_STREQ(KernelDispatchName(KernelDispatch::kAvx2), "avx2");
  ForceScalarKernelDispatchForTest(true);
  EXPECT_EQ(ActiveKernelDispatch(), KernelDispatch::kScalar);
  ForceScalarKernelDispatchForTest(false);
}

}  // namespace
}  // namespace nmrs
