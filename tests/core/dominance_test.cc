#include "core/dominance.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RunningExample;

TEST(ResolveSelectedAttrsTest, EmptyMeansAll) {
  Schema s = Schema::Categorical({2, 3, 4});
  EXPECT_EQ(ResolveSelectedAttrs(s, {}), (std::vector<AttrId>{0, 1, 2}));
}

TEST(ResolveSelectedAttrsTest, PassesThroughSubset) {
  Schema s = Schema::Categorical({2, 3, 4});
  EXPECT_EQ(ResolveSelectedAttrs(s, {2, 0}), (std::vector<AttrId>{2, 0}));
}

TEST(PruneContextTest, QueryDistancesForCandidate) {
  RunningExample ex;
  PruneContext ctx(ex.space, ex.dataset.schema(), ex.query, {});
  // Candidate O2 = [RHL, AMD, Informix]; Q = [MSW, Intel, DB2].
  ctx.SetCandidate(ex.dataset.RowValues(1), nullptr);
  EXPECT_DOUBLE_EQ(ctx.QueryDist(0), 0.8);  // d1(MSW, RHL)
  EXPECT_DOUBLE_EQ(ctx.QueryDist(1), 0.5);  // d2(Intel, AMD)
  EXPECT_DOUBLE_EQ(ctx.QueryDist(2), 0.5);  // d3(DB2, Informix)
}

TEST(PruneContextTest, PaperPruningRelationships) {
  // Paper §4.2: O1 -> {O2, O4, O5}, O2 -> {O5}, O4 -> {O1, O2, O5},
  // O5 -> {O2}; nothing prunes O3 or O6.
  RunningExample ex;
  PruneContext ctx(ex.space, ex.dataset.schema(), ex.query, {});
  const std::vector<std::pair<int, std::vector<int>>> expected = {
      {0, {1, 3, 4}}, {1, {4}}, {2, {}}, {3, {0, 1, 4}}, {4, {1}}, {5, {}}};
  for (const auto& [pruner, prunees] : expected) {
    for (int candidate = 0; candidate < 6; ++candidate) {
      if (candidate == pruner) continue;
      ctx.SetCandidate(ex.dataset.RowValues(candidate), nullptr);
      uint64_t checks = 0;
      const bool prunes =
          ctx.Prunes(ex.dataset.RowValues(pruner), nullptr, &checks);
      const bool expected_prunes =
          std::find(prunees.begin(), prunees.end(), candidate) !=
          prunees.end();
      EXPECT_EQ(prunes, expected_prunes)
          << "O" << pruner + 1 << " vs O" << candidate + 1;
      EXPECT_GE(checks, 1u);
      EXPECT_LE(checks, 3u);
    }
  }
}

TEST(PruneContextTest, EarlyAbortStopsChecking) {
  RunningExample ex;
  PruneContext ctx(ex.space, ex.dataset.schema(), ex.query, {});
  // Candidate O6 = [MSW, Intel, DB2] == Q: every query distance is 0, so
  // any pruner fails on the first strict requirement, or aborts where it
  // is farther.
  ctx.SetCandidate(ex.dataset.RowValues(5), nullptr);
  uint64_t checks = 0;
  // O1 = [MSW, AMD, DB2]: d2(AMD, Intel)=0.5 > 0 -> abort at attr 2.
  EXPECT_FALSE(ctx.Prunes(ex.dataset.RowValues(0), nullptr, &checks));
  EXPECT_EQ(checks, 2u);
}

TEST(PruneContextTest, DuplicatePrunesWhenQueryDiffers) {
  RunningExample ex;
  PruneContext ctx(ex.space, ex.dataset.schema(), ex.query, {});
  // O1 and O4 are identical; each prunes the other because Q differs from
  // them on the Processor attribute (strict exists).
  ctx.SetCandidate(ex.dataset.RowValues(0), nullptr);
  uint64_t checks = 0;
  EXPECT_TRUE(ctx.Prunes(ex.dataset.RowValues(3), nullptr, &checks));
}

TEST(PruneContextTest, DuplicateDoesNotPruneWhenQueryAtCandidate) {
  RunningExample ex;
  // Query exactly at O1's values.
  Object q({RunningExample::kMSW, RunningExample::kAMD, RunningExample::kDB2});
  PruneContext ctx(ex.space, ex.dataset.schema(), q, {});
  ctx.SetCandidate(ex.dataset.RowValues(0), nullptr);
  EXPECT_TRUE(ctx.QueryAtCandidate());
  uint64_t checks = 0;
  // O4 (duplicate of O1) cannot prune: no strict attribute.
  EXPECT_FALSE(ctx.Prunes(ex.dataset.RowValues(3), nullptr, &checks));
}

TEST(PruneContextTest, SubsetRestrictsComparison) {
  RunningExample ex;
  // Only the Processor attribute: O3 = [SL, Intel, Oracle] shares Intel
  // with Q, so d2(q, o3) = 0 -> nothing can be strictly closer; on the
  // full attribute set O3 is also unpruned, but O1 (AMD) now *cannot* even
  // tie on the subset.
  PruneContext ctx(ex.space, ex.dataset.schema(), ex.query, {1});
  EXPECT_EQ(ctx.num_selected(), 1u);
  ctx.SetCandidate(ex.dataset.RowValues(2), nullptr);
  uint64_t checks = 0;
  EXPECT_FALSE(ctx.Prunes(ex.dataset.RowValues(0), nullptr, &checks));
  EXPECT_EQ(checks, 1u);
}

TEST(PruneContextTest, NumericAttributesCompareExactValues) {
  Schema s = Schema::Categorical({2});
  AttributeInfo num;
  num.is_numeric = true;
  num.cardinality = 4;
  num.range = {0.0, 100.0};
  s.AddAttribute(num);
  SimilaritySpace space;
  DissimilarityMatrix m(2);
  m.SetSymmetric(0, 1, 0.5);
  space.AddCategorical(std::move(m));
  space.AddNumeric(NumericDissimilarity());

  Dataset d(s);
  d.AppendRow({0, 0}, {0.0, 50.0});  // candidate X
  d.AppendRow({0, 0}, {0.0, 58.0});  // Y: same cat, numeric closer to X than Q
  Object q = d.MakeObject({0, 0}, {0.0, 70.0});

  PruneContext ctx(space, s, q, {});
  ctx.SetCandidate(d.RowValues(0), d.RowNumerics(0));
  EXPECT_DOUBLE_EQ(ctx.QueryDist(1), 20.0);
  uint64_t checks = 0;
  EXPECT_TRUE(ctx.Prunes(d.RowValues(1), d.RowNumerics(1), &checks));
}

}  // namespace
}  // namespace nmrs
