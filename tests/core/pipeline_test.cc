#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "core/skyline.h"
#include "data/generators.h"
#include "order/attribute_order.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

TEST(PipelineTest, AlgorithmNames) {
  EXPECT_EQ(AlgorithmName(Algorithm::kNaive), "Naive");
  EXPECT_EQ(AlgorithmName(Algorithm::kBRS), "BRS");
  EXPECT_EQ(AlgorithmName(Algorithm::kSRS), "SRS");
  EXPECT_EQ(AlgorithmName(Algorithm::kTRS), "TRS");
  EXPECT_EQ(AlgorithmName(Algorithm::kTileSRS), "T-SRS");
  EXPECT_EQ(AlgorithmName(Algorithm::kTileTRS), "T-TRS");
}

TEST(PipelineTest, NaiveAndBrsKeepPhysicalOrder) {
  RandomInstance inst(1, 100, {5, 5});
  SimulatedDisk disk(256);
  for (Algorithm algo : {Algorithm::kNaive, Algorithm::kBRS}) {
    auto prepared = PrepareDataset(&disk, inst.data, algo, {});
    ASSERT_TRUE(prepared.ok());
    RowBatch all(2, false);
    ASSERT_TRUE(prepared->stored.ReadAll(&all).ok());
    for (size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all.id(i), i);
    }
  }
}

TEST(PipelineTest, SrsAndTrsShareSortedOrder) {
  RandomInstance inst(2, 200, {4, 6});
  SimulatedDisk disk(256);
  auto srs = PrepareDataset(&disk, inst.data, Algorithm::kSRS, {});
  auto trs = PrepareDataset(&disk, inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(srs.ok() && trs.ok());
  RowBatch a(2, false), b(2, false);
  ASSERT_TRUE(srs->stored.ReadAll(&a).ok());
  ASSERT_TRUE(trs->stored.ReadAll(&b).ok());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.id(i), b.id(i));
  }
  // Default ordering = ascending cardinality.
  EXPECT_EQ(srs->attr_order, AscendingCardinalityOrder(inst.data.schema()));
}

TEST(PipelineTest, ExplicitAttrOrderRespected) {
  RandomInstance inst(3, 100, {4, 6});
  SimulatedDisk disk(256);
  PrepareOptions prep;
  prep.attr_order = {1, 0};
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kSRS, prep);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->attr_order, (std::vector<AttrId>{1, 0}));
  // Rows are lexicographically sorted by attribute 1 first.
  RowBatch all(2, false);
  ASSERT_TRUE(prepared->stored.ReadAll(&all).ok());
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all.value(i - 1, 1), all.value(i, 1));
  }
}

TEST(PipelineTest, RowIdsPreservedUnderAnyOrdering) {
  RandomInstance inst(4, 150, {3, 3, 3});
  SimulatedDisk disk(256);
  for (Algorithm algo : {Algorithm::kSRS, Algorithm::kTileSRS}) {
    auto prepared = PrepareDataset(&disk, inst.data, algo, {});
    ASSERT_TRUE(prepared.ok());
    RowBatch all(3, false);
    ASSERT_TRUE(prepared->stored.ReadAll(&all).ok());
    std::vector<bool> seen(inst.data.num_rows(), false);
    for (size_t i = 0; i < all.size(); ++i) {
      ASSERT_LT(all.id(i), inst.data.num_rows());
      EXPECT_FALSE(seen[all.id(i)]);
      seen[all.id(i)] = true;
      // The row's content matches the original row with that id.
      for (AttrId a = 0; a < 3; ++a) {
        EXPECT_EQ(all.value(i, a), inst.data.Value(all.id(i), a));
      }
    }
  }
}

// The TRS result must be invariant to the attribute ordering used for the
// sort and the tree — the ordering is a performance heuristic, never a
// correctness parameter.
class AttrOrderInvariance
    : public ::testing::TestWithParam<std::vector<AttrId>> {};

TEST_P(AttrOrderInvariance, TrsResultUnchanged) {
  const std::vector<AttrId> order = GetParam();
  RandomInstance inst(5, 250, {4, 5, 3});
  Rng rng(6);
  Object q = SampleUniformQuery(inst.data, rng);
  auto expected = ReverseSkylineOracle(inst.data, inst.space, q);

  SimulatedDisk disk(256);
  PrepareOptions prep;
  prep.attr_order = order;
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kTRS, prep);
  ASSERT_TRUE(prepared.ok());
  RSOptions opts;
  opts.memory.pages = 3;
  auto result =
      RunReverseSkyline(*prepared, inst.space, q, Algorithm::kTRS, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Orders, AttrOrderInvariance,
    ::testing::Values(std::vector<AttrId>{0, 1, 2},
                      std::vector<AttrId>{2, 1, 0},
                      std::vector<AttrId>{1, 0, 2},
                      std::vector<AttrId>{1, 2, 0},
                      std::vector<AttrId>{2, 0, 1},
                      std::vector<AttrId>{0, 2, 1}));

TEST(PipelineTest, TilesPerDimAffectsOrderNotResults) {
  RandomInstance inst(7, 200, {8, 8});
  Rng rng(8);
  Object q = SampleUniformQuery(inst.data, rng);
  auto expected = ReverseSkylineOracle(inst.data, inst.space, q);
  SimulatedDisk disk(256);
  for (size_t tiles : {1u, 2u, 4u, 8u, 16u}) {
    PrepareOptions prep;
    prep.tiles_per_dim = tiles;
    auto prepared =
        PrepareDataset(&disk, inst.data, Algorithm::kTileTRS, prep);
    ASSERT_TRUE(prepared.ok());
    auto result = RunReverseSkyline(*prepared, inst.space, q,
                                    Algorithm::kTileTRS, {});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows, expected) << "tiles=" << tiles;
  }
}

}  // namespace
}  // namespace nmrs
