#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/skyline.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

// Attribute-subset queries (paper §5.6): dominance evaluated only on the
// chosen attributes; SRS/TRS run on data ordered by the *full* ordering.
class SubsetQueryTest
    : public ::testing::TestWithParam<std::vector<AttrId>> {};

TEST_P(SubsetQueryTest, AllAlgorithmsMatchOracleOnSubsets) {
  const std::vector<AttrId> subset = GetParam();
  RandomInstance inst(99, 300, {5, 7, 4, 6, 3});
  Rng rng(100);
  Object q = SampleUniformQuery(inst.data, rng);
  auto expected = ReverseSkylineOracle(inst.data, inst.space, q, subset);

  SimulatedDisk disk(512);
  RSOptions opts;
  opts.memory.pages = 3;
  opts.selected_attrs = subset;
  for (Algorithm algo :
       {Algorithm::kNaive, Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS,
        Algorithm::kTileSRS, Algorithm::kTileTRS}) {
    auto prepared = PrepareDataset(&disk, inst.data, algo, {});
    ASSERT_TRUE(prepared.ok());
    auto result = RunReverseSkyline(*prepared, inst.space, q, algo, opts);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo);
    EXPECT_EQ(result->rows, expected) << AlgorithmName(algo);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Subsets, SubsetQueryTest,
    ::testing::Values(std::vector<AttrId>{0}, std::vector<AttrId>{4},
                      std::vector<AttrId>{0, 1},
                      std::vector<AttrId>{3, 4},
                      std::vector<AttrId>{0, 2, 4},
                      std::vector<AttrId>{1, 2, 3},
                      std::vector<AttrId>{0, 1, 2, 3, 4}));

TEST(SubsetQueryTest, SubsetGrowsOrShrinksResultSensibly) {
  // Fewer attributes -> domination is easier (fewer conditions), so the
  // reverse skyline can only stay equal or shrink... not in general, but
  // the subset result must at least be a valid oracle answer. Verify
  // consistency between two disjoint subsets and the full set.
  RandomInstance inst(7, 150, {4, 4, 4, 4});
  Rng rng(8);
  Object q = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(512);
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prepared.ok());
  for (const std::vector<AttrId>& sel :
       std::vector<std::vector<AttrId>>{{0, 1}, {2, 3}, {}}) {
    RSOptions opts;
    opts.selected_attrs = sel;
    auto result =
        RunReverseSkyline(*prepared, inst.space, q, Algorithm::kTRS, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows,
              ReverseSkylineOracle(inst.data, inst.space, q, sel));
  }
}

TEST(SubsetQueryTest, SingleAttributeSubset) {
  // With one attribute, X is in RS(Q) iff no other object's value is
  // strictly closer to X's value than Q's value is.
  RandomInstance inst(55, 80, {6, 6});
  Rng rng(56);
  Object q = SampleUniformQuery(inst.data, rng);
  const std::vector<AttrId> sel = {1};
  auto oracle = ReverseSkylineOracle(inst.data, inst.space, q, sel);
  for (RowId x = 0; x < inst.data.num_rows(); ++x) {
    const double qd =
        inst.space.CatDist(1, q.values[1], inst.data.Value(x, 1));
    bool has_pruner = false;
    for (RowId y = 0; y < inst.data.num_rows() && !has_pruner; ++y) {
      if (y == x) continue;
      has_pruner =
          inst.space.CatDist(1, inst.data.Value(y, 1),
                             inst.data.Value(x, 1)) < qd;
    }
    const bool in_rs =
        std::find(oracle.begin(), oracle.end(), x) != oracle.end();
    EXPECT_EQ(in_rs, !has_pruner) << "row " << x;
  }
}

}  // namespace
}  // namespace nmrs
