#include <gtest/gtest.h>

#include "core/skyline.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;
using testing::RunningExample;

TEST(TreeDynamicSkylineTest, MatchesBnlOnRunningExample) {
  RunningExample ex;
  for (RowId ref_row = 0; ref_row < ex.dataset.num_rows(); ++ref_row) {
    const Object ref = ex.dataset.GetObject(ref_row);
    EXPECT_EQ(TreeDynamicSkyline(ex.dataset, ex.space, ref),
              DynamicSkylineBNL(ex.dataset, ex.space, ref))
        << "ref O" << ref_row + 1;
  }
}

class TreeSkylineAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeSkylineAgreement, MatchesBnlOnRandomInstances) {
  const uint64_t seed = GetParam();
  RandomInstance inst(seed, 300, {6, 5, 7});
  Rng rng(seed + 50);
  for (int trial = 0; trial < 4; ++trial) {
    Object ref = SampleUniformQuery(inst.data, rng);
    EXPECT_EQ(TreeDynamicSkyline(inst.data, inst.space, ref),
              DynamicSkylineBNL(inst.data, inst.space, ref))
        << "seed " << seed << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeSkylineAgreement,
                         ::testing::Values(31, 32, 33, 34, 35));

TEST(TreeDynamicSkylineTest, SubsetsMatchBnl) {
  RandomInstance inst(41, 200, {4, 4, 4, 4});
  Rng rng(42);
  Object ref = SampleUniformQuery(inst.data, rng);
  for (const std::vector<AttrId>& sel :
       std::vector<std::vector<AttrId>>{{0}, {2, 3}, {0, 1, 2}, {}}) {
    EXPECT_EQ(TreeDynamicSkyline(inst.data, inst.space, ref, sel),
              DynamicSkylineBNL(inst.data, inst.space, ref, sel));
  }
}

TEST(TreeDynamicSkylineTest, GroupLevelReasoningSavesChecks) {
  RandomInstance inst(51, 4000, {8, 8, 8});
  Rng rng(52);
  Object ref = SampleUniformQuery(inst.data, rng);
  uint64_t checks = 0;
  auto sky = TreeDynamicSkyline(inst.data, inst.space, ref, {}, &checks);
  EXPECT_FALSE(sky.empty());
  // A nested-loop approach costs Θ(n²·m) in the worst case and Θ(n·m)
  // per object pair even with early aborts; group-level reasoning should
  // land far below n² pair comparisons.
  EXPECT_LT(checks, inst.data.num_rows() * inst.data.num_rows() / 10);
}

TEST(TreeDynamicSkylineTest, DuplicatesAllKept) {
  Dataset data(Schema::Categorical({3, 3}));
  for (int i = 0; i < 8; ++i) data.AppendCategoricalRow({1, 2});
  data.AppendCategoricalRow({0, 0});
  Rng rng(53);
  SimilaritySpace space = MakeRandomSpace({3, 3}, rng);
  Object ref({2, 1});
  auto tree_sky = TreeDynamicSkyline(data, space, ref);
  auto bnl_sky = DynamicSkylineBNL(data, space, ref);
  EXPECT_EQ(tree_sky, bnl_sky);
  // The 8 duplicates stand or fall together.
  const bool first_in =
      std::find(tree_sky.begin(), tree_sky.end(), 0u) != tree_sky.end();
  for (RowId r = 1; r < 8; ++r) {
    EXPECT_EQ(std::find(tree_sky.begin(), tree_sky.end(), r) !=
                  tree_sky.end(),
              first_in);
  }
}

TEST(TreeDynamicSkylineTest, EmptyDataset) {
  Dataset data(Schema::Categorical({3}));
  Rng rng(54);
  SimilaritySpace space = MakeRandomSpace({3}, rng);
  EXPECT_TRUE(TreeDynamicSkyline(data, space, Object({0})).empty());
}

}  // namespace
}  // namespace nmrs
