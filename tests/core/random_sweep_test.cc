// Broad randomized cross-validation: hundreds of random configurations
// (dimensionality, cardinalities, distribution, symmetry, query type,
// attribute subsets, page sizes, memory budgets) — every disk-based
// algorithm must match the definition-derived oracle on all of them.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/skyline.h"
#include "data/generators.h"

namespace nmrs {
namespace {

class RandomConfigSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomConfigSweep, AllAlgorithmsMatchOracle) {
  Rng master(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const size_t m = 1 + master.Uniform(5);
    std::vector<size_t> cards(m);
    for (auto& c : cards) c = 2 + master.Uniform(12);
    const uint64_t n = 5 + master.Uniform(300);
    const bool normal = master.Bernoulli(0.5);
    const bool asym = master.Bernoulli(0.3);
    Rng drng = master.Fork();
    Rng srng = master.Fork();
    Rng qrng = master.Fork();
    Dataset data = normal ? GenerateNormal(n, cards, drng)
                          : GenerateUniform(n, cards, drng);
    SimilaritySpace space;
    for (size_t c : cards) {
      space.AddCategorical(MakeRandomMatrix(c, srng, {.symmetric = !asym}));
    }
    Object q = master.Bernoulli(0.5) ? SampleUniformQuery(data, qrng)
                                     : SampleRowQuery(data, qrng);
    std::vector<AttrId> sel;
    if (master.Bernoulli(0.3)) {
      for (AttrId a = 0; a < m; ++a) {
        if (master.Bernoulli(0.6)) sel.push_back(a);
      }
    }
    auto expected = ReverseSkylineOracle(data, space, q, sel);

    SimulatedDisk disk(64 + master.Uniform(1000));
    RSOptions opts;
    opts.memory.pages = 2 + master.Uniform(10);
    opts.selected_attrs = sel;
    for (Algorithm algo :
         {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS,
          Algorithm::kTileSRS, Algorithm::kTileTRS}) {
      auto prep = PrepareDataset(&disk, data, algo, {});
      ASSERT_TRUE(prep.ok());
      auto result = RunReverseSkyline(*prep, space, q, algo, opts);
      ASSERT_TRUE(result.ok()) << AlgorithmName(algo);
      EXPECT_EQ(result->rows, expected)
          << AlgorithmName(algo) << " trial=" << trial << " n=" << n
          << " m=" << m << " normal=" << normal << " asym=" << asym;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigSweep,
                         ::testing::Values(987654321, 13579, 24680, 111213));

}  // namespace
}  // namespace nmrs
