#include "core/bichromatic.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/skyline.h"
#include "data/generators.h"
#include "order/multi_sort.h"
#include "order/attribute_order.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

struct BiSetup {
  Dataset candidates;
  Dataset competitors;
  SimilaritySpace space;

  BiSetup(uint64_t seed, uint64_t n_candidates, uint64_t n_competitors,
          std::vector<size_t> cards)
      : candidates(Schema::Categorical(cards)),
        competitors(Schema::Categorical(cards)) {
    Rng rng(seed);
    Rng c_rng = rng.Fork();
    Rng p_rng = rng.Fork();
    Rng s_rng = rng.Fork();
    candidates = GenerateNormal(n_candidates, cards, c_rng);
    competitors = GenerateUniform(n_competitors, cards, p_rng);
    space = MakeRandomSpace(cards, s_rng);
  }
};

// Stores candidates (sorted for the tree variant) and competitors on one
// disk.
struct StoredPair {
  StoredDataset candidates;
  StoredDataset competitors;
};

StoredPair Store(SimulatedDisk* disk, const BiSetup& s, bool sort_candidates) {
  Dataset cands = s.candidates;
  if (sort_candidates) {
    // Keep original ids: write through the pipeline-style ordered writer by
    // serializing a permuted copy with explicit ids.
    auto order = MultiAttributeSortOrder(
        s.candidates, AscendingCardinalityOrder(s.candidates.schema()));
    FileId file = disk->CreateFile("bi-candidates");
    RowWriter writer(disk, file, s.candidates.schema());
    for (RowId src : order) {
      NMRS_CHECK(writer
                     .Add(src, s.candidates.RowValues(src),
                          s.candidates.RowNumerics(src))
                     .ok());
    }
    NMRS_CHECK(writer.Finish().ok());
    StoredDataset stored_c(disk, file, s.candidates.schema(),
                           s.candidates.num_rows());
    auto stored_p = StoredDataset::Create(disk, s.competitors, "bi-comp");
    NMRS_CHECK(stored_p.ok());
    return {stored_c, std::move(stored_p).value()};
  }
  auto stored_c = StoredDataset::Create(disk, cands, "bi-candidates");
  auto stored_p = StoredDataset::Create(disk, s.competitors, "bi-comp");
  NMRS_CHECK(stored_c.ok() && stored_p.ok());
  return {std::move(stored_c).value(), std::move(stored_p).value()};
}

class BichromaticAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BichromaticAgreement, BlockAndTreeMatchOracle) {
  const uint64_t seed = GetParam();
  BiSetup s(seed, 300, 500, {6, 6, 6});
  Rng rng(seed + 9);
  SimulatedDisk disk(512);
  StoredPair flat = Store(&disk, s, /*sort_candidates=*/false);
  StoredPair sorted = Store(&disk, s, /*sort_candidates=*/true);
  for (int qi = 0; qi < 3; ++qi) {
    Object q = SampleUniformQuery(s.candidates, rng);
    auto expected = BichromaticOracle(s.candidates, s.competitors, s.space, q);
    RSOptions opts;
    opts.memory.pages = 3;
    auto block = BichromaticBlockRS(flat.candidates, flat.competitors,
                                    s.space, q, opts);
    ASSERT_TRUE(block.ok()) << block.status();
    EXPECT_EQ(block->rows, expected);
    auto tree = BichromaticTreeRS(sorted.candidates, sorted.competitors,
                                  s.space, q, opts);
    ASSERT_TRUE(tree.ok()) << tree.status();
    EXPECT_EQ(tree->rows, expected);
    // Group-level reasoning must save attribute-level checks.
    EXPECT_LT(tree->stats.checks, block->stats.checks);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BichromaticAgreement,
                         ::testing::Values(1, 2, 3, 4));

TEST(BichromaticTest, IdenticalValueAcrossSetsStillPrunes) {
  // A competitor with exactly the candidate's values prunes it whenever Q
  // differs (no identity exemption across sets — unlike the monochromatic
  // case).
  Dataset cands(Schema::Categorical({3}));
  cands.AppendCategoricalRow({1});
  Dataset comps(Schema::Categorical({3}));
  comps.AppendCategoricalRow({1});
  Rng rng(5);
  SimilaritySpace space = MakeRandomSpace({3}, rng);
  Object q({0});
  ASSERT_GT(space.CatDist(0, 0, 1), 0.0);
  auto oracle = BichromaticOracle(cands, comps, space, q);
  EXPECT_TRUE(oracle.empty());

  SimulatedDisk disk(128);
  auto sc = StoredDataset::Create(&disk, cands, "c");
  auto sp = StoredDataset::Create(&disk, comps, "p");
  ASSERT_TRUE(sc.ok() && sp.ok());
  auto tree = BichromaticTreeRS(*sc, *sp, space, q);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->rows.empty());
}

TEST(BichromaticTest, EmptyCompetitorsKeepsAllCandidates) {
  BiSetup s(7, 50, 0, {4, 4});
  Rng rng(8);
  Object q = SampleUniformQuery(s.candidates, rng);
  SimulatedDisk disk(256);
  StoredPair pair = Store(&disk, s, false);
  auto block = BichromaticBlockRS(pair.candidates, pair.competitors, s.space,
                                  q);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->rows.size(), 50u);
}

TEST(BichromaticTest, EmptyCandidates) {
  BiSetup s(9, 0, 50, {4, 4});
  Object q({0, 0});
  SimulatedDisk disk(256);
  StoredPair pair = Store(&disk, s, false);
  auto tree = BichromaticTreeRS(pair.candidates, pair.competitors, s.space,
                                q);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->rows.empty());
}

TEST(BichromaticTest, MonochromaticAsSpecialCase) {
  // With C = P = D, the bichromatic result is the subset of the
  // monochromatic RS whose members are not pruned even by their own
  // value-duplicates or themselves; rows where Q sits exactly at the
  // candidate survive.
  testing::RandomInstance inst(11, 150, {5, 5});
  Rng rng(12);
  Object q = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(256);
  auto sc = StoredDataset::Create(&disk, inst.data, "c");
  auto sp = StoredDataset::Create(&disk, inst.data, "p");
  ASSERT_TRUE(sc.ok() && sp.ok());
  auto bi = BichromaticBlockRS(*sc, *sp, inst.space, q);
  ASSERT_TRUE(bi.ok());
  auto mono = ReverseSkylineOracle(inst.data, inst.space, q);
  // Bichromatic (with self-pruning) is a subset of monochromatic.
  EXPECT_TRUE(std::includes(mono.begin(), mono.end(), bi->rows.begin(),
                            bi->rows.end()));
}

TEST(BichromaticTest, SubsetQueries) {
  BiSetup s(13, 200, 300, {5, 5, 5, 5});
  Rng rng(14);
  Object q = SampleUniformQuery(s.candidates, rng);
  const std::vector<AttrId> sel = {1, 3};
  auto expected =
      BichromaticOracle(s.candidates, s.competitors, s.space, q, sel);
  SimulatedDisk disk(512);
  StoredPair pair = Store(&disk, s, true);
  RSOptions opts;
  opts.selected_attrs = sel;
  auto tree =
      BichromaticTreeRS(pair.candidates, pair.competitors, s.space, q, opts);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->rows, expected);
}

TEST(BichromaticTest, MemorySweep) {
  BiSetup s(15, 400, 400, {6, 6});
  Rng rng(16);
  Object q = SampleUniformQuery(s.candidates, rng);
  auto expected = BichromaticOracle(s.candidates, s.competitors, s.space, q);
  SimulatedDisk disk(256);
  StoredPair pair = Store(&disk, s, true);
  for (uint64_t mem : {2u, 3u, 8u, 1000u}) {
    RSOptions opts;
    opts.memory.pages = mem;
    auto block = BichromaticBlockRS(pair.candidates, pair.competitors,
                                    s.space, q, opts);
    auto tree = BichromaticTreeRS(pair.candidates, pair.competitors, s.space,
                                  q, opts);
    ASSERT_TRUE(block.ok() && tree.ok());
    EXPECT_EQ(block->rows, expected) << "mem=" << mem;
    EXPECT_EQ(tree->rows, expected) << "mem=" << mem;
  }
}

}  // namespace
}  // namespace nmrs
