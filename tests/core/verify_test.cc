#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/skyline.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;
using testing::RunningExample;

TEST(VerifyReverseSkylineTest, AcceptsCorrectAnswer) {
  RunningExample ex;
  EXPECT_TRUE(
      VerifyReverseSkyline(ex.dataset, ex.space, ex.query, {2, 5}).ok());
}

TEST(VerifyReverseSkylineTest, RejectsMissingRow) {
  RunningExample ex;
  auto s = VerifyReverseSkyline(ex.dataset, ex.space, ex.query, {2});
  EXPECT_TRUE(s.IsFailedPrecondition());
  EXPECT_NE(s.message().find("missing"), std::string::npos);
}

TEST(VerifyReverseSkylineTest, RejectsExtraRow) {
  RunningExample ex;
  auto s = VerifyReverseSkyline(ex.dataset, ex.space, ex.query, {0, 2, 5});
  EXPECT_TRUE(s.IsFailedPrecondition());
  EXPECT_NE(s.message().find("pruner"), std::string::npos);
}

TEST(VerifyReverseSkylineTest, RejectsOutOfRangeAndDuplicates) {
  RunningExample ex;
  EXPECT_TRUE(VerifyReverseSkyline(ex.dataset, ex.space, ex.query, {99})
                  .IsFailedPrecondition());
  EXPECT_TRUE(VerifyReverseSkyline(ex.dataset, ex.space, ex.query, {2, 2, 5})
                  .IsFailedPrecondition());
}

TEST(VerifyReverseSkylineTest, AcceptsEveryAlgorithmsOutput) {
  RandomInstance inst(77, 200, {5, 6, 4});
  Rng rng(78);
  Object q = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(512);
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    auto prep = PrepareDataset(&disk, inst.data, algo, {});
    ASSERT_TRUE(prep.ok());
    auto result = RunReverseSkyline(*prep, inst.space, q, algo, {});
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(
        VerifyReverseSkyline(inst.data, inst.space, q, result->rows).ok())
        << AlgorithmName(algo);
  }
}

TEST(VerifyReverseSkylineTest, SubsetAware) {
  RandomInstance inst(79, 100, {4, 4, 4});
  Rng rng(80);
  Object q = SampleUniformQuery(inst.data, rng);
  const std::vector<AttrId> sel = {0, 2};
  auto rs = ReverseSkylineOracle(inst.data, inst.space, q, sel);
  EXPECT_TRUE(
      VerifyReverseSkyline(inst.data, inst.space, q, rs, sel).ok());
  // The full-attribute answer generally differs.
  auto full = ReverseSkylineOracle(inst.data, inst.space, q);
  if (full != rs) {
    EXPECT_FALSE(
        VerifyReverseSkyline(inst.data, inst.space, q, full, sel).ok());
  }
}

}  // namespace
}  // namespace nmrs
