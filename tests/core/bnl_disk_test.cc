#include "core/bnl_disk.h"

#include <gtest/gtest.h>

#include "core/skyline.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;
using testing::RunningExample;

TEST(BnlDiskTest, MatchesInMemoryBnlOnRunningExample) {
  RunningExample ex;
  SimulatedDisk disk(28);  // one object per page
  auto stored = StoredDataset::Create(&disk, ex.dataset, "d");
  ASSERT_TRUE(stored.ok());
  for (RowId ref_row = 0; ref_row < ex.dataset.num_rows(); ++ref_row) {
    const Object ref = ex.dataset.GetObject(ref_row);
    auto expected = DynamicSkylineBNL(ex.dataset, ex.space, ref);
    auto got = BnlDynamicSkyline(*stored, ex.space, ref);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->rows, expected) << "ref O" << ref_row + 1;
  }
}

class BnlDiskMemorySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BnlDiskMemorySweep, MatchesInMemoryAcrossBudgets) {
  const uint64_t mem = GetParam();
  RandomInstance inst(61, 400, {7, 7, 7});
  Rng rng(62);
  SimulatedDisk disk(256);
  auto stored = StoredDataset::Create(&disk, inst.data, "d");
  ASSERT_TRUE(stored.ok());
  for (int trial = 0; trial < 3; ++trial) {
    Object ref = SampleUniformQuery(inst.data, rng);
    auto expected = DynamicSkylineBNL(inst.data, inst.space, ref);
    RSOptions opts;
    opts.memory.pages = mem;
    auto got = BnlDynamicSkyline(*stored, inst.space, ref, opts);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->rows, expected) << "mem=" << mem << " trial=" << trial;
    if (mem == 2) {
      // Tight memory must force multiple passes on a 400-row skyline-rich
      // input (window = 1 page).
      EXPECT_GE(got->stats.phase1_batches, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BnlDiskMemorySweep,
                         ::testing::Values(2, 3, 5, 1000));

TEST(BnlDiskTest, MultiPassPathExercised) {
  // Sparse, high-dimensional data yields a large skyline that overflows a
  // tiny window -> several BNL passes.
  RandomInstance inst(63, 600, {10, 10, 10, 10, 10});
  Rng rng(64);
  Object ref = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(128);
  auto stored = StoredDataset::Create(&disk, inst.data, "d");
  ASSERT_TRUE(stored.ok());
  RSOptions opts;
  opts.memory.pages = 2;
  auto got = BnlDynamicSkyline(*stored, inst.space, ref, opts);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(got->stats.phase1_batches, 1u);
  EXPECT_EQ(got->rows, DynamicSkylineBNL(inst.data, inst.space, ref));
}

TEST(BnlDiskTest, DuplicatesAllSurviveTogether) {
  Dataset data(Schema::Categorical({4}));
  for (int i = 0; i < 12; ++i) data.AppendCategoricalRow({2});
  Rng rng(65);
  SimilaritySpace space = MakeRandomSpace({4}, rng);
  SimulatedDisk disk(128);
  auto stored = StoredDataset::Create(&disk, data, "d");
  ASSERT_TRUE(stored.ok());
  auto got = BnlDynamicSkyline(*stored, space, Object({0}));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->rows.size(), 12u);  // duplicates never dominate each other
}

TEST(BnlDiskTest, SubsetQueries) {
  RandomInstance inst(66, 200, {5, 5, 5});
  Rng rng(67);
  Object ref = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(256);
  auto stored = StoredDataset::Create(&disk, inst.data, "d");
  ASSERT_TRUE(stored.ok());
  const std::vector<AttrId> sel = {0, 2};
  RSOptions opts;
  opts.selected_attrs = sel;
  auto got = BnlDynamicSkyline(*stored, inst.space, ref, opts);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->rows, DynamicSkylineBNL(inst.data, inst.space, ref, sel));
}

TEST(BnlDiskTest, EmptyAndTinyInputs) {
  Rng rng(68);
  SimilaritySpace space = MakeRandomSpace({3}, rng);
  SimulatedDisk disk(128);

  Dataset empty(Schema::Categorical({3}));
  auto stored_empty = StoredDataset::Create(&disk, empty, "e");
  ASSERT_TRUE(stored_empty.ok());
  auto got = BnlDynamicSkyline(*stored_empty, space, Object({0}));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->rows.empty());

  Dataset one(Schema::Categorical({3}));
  one.AppendCategoricalRow({1});
  auto stored_one = StoredDataset::Create(&disk, one, "o");
  ASSERT_TRUE(stored_one.ok());
  got = BnlDynamicSkyline(*stored_one, space, Object({0}));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->rows, (std::vector<RowId>{0}));
}

TEST(BnlDiskTest, RejectsSubTwoPageMemory) {
  RandomInstance inst(69, 10, {3});
  SimulatedDisk disk(128);
  auto stored = StoredDataset::Create(&disk, inst.data, "d");
  ASSERT_TRUE(stored.ok());
  RSOptions opts;
  opts.memory.pages = 1;
  EXPECT_TRUE(BnlDynamicSkyline(*stored, inst.space, Object({0}), opts)
                  .status()
                  .IsInvalidArgument());
}

TEST(BnlDiskTest, TempFilesCleanedUp) {
  RandomInstance inst(70, 300, {20, 20});
  Rng rng(71);
  Object ref = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(128);
  auto stored = StoredDataset::Create(&disk, inst.data, "d");
  ASSERT_TRUE(stored.ok());
  const uint64_t before = disk.TotalPages();
  RSOptions opts;
  opts.memory.pages = 2;
  auto got = BnlDynamicSkyline(*stored, inst.space, ref, opts);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(disk.TotalPages(), before);
}

TEST(BnlDiskTest, ReverseSkylineViaSkylineMembership) {
  // Definition 1 end-to-end on disk: X in RS(Q) iff Q in S((D\{X}) u {Q})
  // w.r.t. X. Cross-validate TRS against per-row BNL skylines.
  RandomInstance inst(72, 60, {4, 4});
  Rng rng(73);
  Object q = SampleUniformQuery(inst.data, rng);
  auto rs = ReverseSkylineOracle(inst.data, inst.space, q);
  for (RowId x = 0; x < inst.data.num_rows(); ++x) {
    // Build D' = (D \ {X}) ∪ {Q} in memory, then check membership of Q.
    Dataset d_prime(inst.data.schema());
    for (RowId r = 0; r < inst.data.num_rows(); ++r) {
      if (r == x) continue;
      d_prime.AppendCategoricalRow(std::vector<ValueId>(
          inst.data.RowValues(r), inst.data.RowValues(r) + 2));
    }
    d_prime.AppendCategoricalRow(q.values);  // Q gets the last row id
    const RowId q_row = d_prime.num_rows() - 1;
    SimulatedDisk disk(256);
    auto stored = StoredDataset::Create(&disk, d_prime, "dp");
    ASSERT_TRUE(stored.ok());
    auto sky =
        BnlDynamicSkyline(*stored, inst.space, inst.data.GetObject(x));
    ASSERT_TRUE(sky.ok());
    const bool q_in_sky =
        std::find(sky->rows.begin(), sky->rows.end(), q_row) !=
        sky->rows.end();
    const bool in_rs = std::find(rs.begin(), rs.end(), x) != rs.end();
    EXPECT_EQ(q_in_sky, in_rs) << "row " << x;
  }
}

}  // namespace
}  // namespace nmrs
