#include "core/uncertain.h"

#include <gtest/gtest.h>

#include "core/skyline.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;
using testing::RunningExample;

TEST(UncertainRsTest, CertainDataReducesToClassicRs) {
  // Existence probability 1 everywhere: membership probability is 1 for
  // classic RS members and 0 for everything else, at any threshold.
  RunningExample ex;
  std::vector<double> certain(ex.dataset.num_rows(), 1.0);
  auto result = UncertainReverseSkyline(ex.dataset, ex.space, ex.query,
                                        certain, 0.5);
  EXPECT_EQ(result.rows, (std::vector<RowId>{2, 5}));
  for (double p : result.probabilities) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(UncertainRsTest, RunningExampleWithUncertainPruners) {
  RunningExample ex;
  // O4 (the only pruner of O1) exists with probability 0.3: O1's
  // membership probability is 1 * (1 - 0.3) = 0.7.
  std::vector<double> existence(ex.dataset.num_rows(), 1.0);
  existence[3] = 0.3;
  const double p_o1 = UncertainMembershipProbability(ex.dataset, ex.space,
                                                     ex.query, 0, existence);
  EXPECT_NEAR(p_o1, 0.7, 1e-12);
  // O5's pruners are O1, O2, O4: 1 * (1-1)(...) = 0 since O1 is certain.
  const double p_o5 = UncertainMembershipProbability(ex.dataset, ex.space,
                                                     ex.query, 4, existence);
  EXPECT_DOUBLE_EQ(p_o5, 0.0);

  auto at_half = UncertainReverseSkyline(ex.dataset, ex.space, ex.query,
                                         existence, 0.5);
  // O1 (0.7), O3 (1.0), O6 (1.0) qualify; O4 itself has probability
  // 0.3 * (1 - existence[O1]=1) = 0.
  EXPECT_EQ(at_half.rows, (std::vector<RowId>{0, 2, 5}));
}

TEST(UncertainRsTest, ThresholdMonotonicity) {
  RandomInstance inst(3, 150, {5, 5, 5});
  Rng rng(4);
  Object q = SampleUniformQuery(inst.data, rng);
  std::vector<double> existence(inst.data.num_rows());
  for (auto& p : existence) p = rng.UniformDouble(0.1, 1.0);

  std::vector<RowId> prev;
  bool first = true;
  for (double tau : {0.05, 0.2, 0.5, 0.8, 0.99}) {
    auto result =
        UncertainReverseSkyline(inst.data, inst.space, q, existence, tau);
    if (!first) {
      // Higher threshold -> subset of the lower-threshold result.
      EXPECT_TRUE(std::includes(prev.begin(), prev.end(),
                                result.rows.begin(), result.rows.end()))
          << "tau=" << tau;
    }
    prev = result.rows;
    first = false;
  }
}

TEST(UncertainRsTest, ResultMatchesPerRowProbability) {
  RandomInstance inst(5, 120, {4, 4});
  Rng rng(6);
  Object q = SampleUniformQuery(inst.data, rng);
  std::vector<double> existence(inst.data.num_rows());
  for (auto& p : existence) p = rng.UniformDouble(0.0, 1.0);
  const double tau = 0.3;
  auto result =
      UncertainReverseSkyline(inst.data, inst.space, q, existence, tau);
  std::vector<RowId> expected;
  for (RowId r = 0; r < inst.data.num_rows(); ++r) {
    const double p =
        UncertainMembershipProbability(inst.data, inst.space, q, r,
                                       existence);
    if (p >= tau) expected.push_back(r);
  }
  EXPECT_EQ(result.rows, expected);
  // Reported probabilities match the per-row computation.
  for (size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_NEAR(result.probabilities[i],
                UncertainMembershipProbability(inst.data, inst.space, q,
                                               result.rows[i], existence),
                1e-12);
  }
}

TEST(UncertainRsTest, ClassicRsMembersAlwaysQualifyWhenCertain) {
  // Members of the classic RS have no pruners, so their probability is
  // exactly their own existence: they qualify iff existence >= tau.
  RandomInstance inst(7, 100, {6, 6});
  Rng rng(8);
  Object q = SampleUniformQuery(inst.data, rng);
  auto classic = ReverseSkylineOracle(inst.data, inst.space, q);
  std::vector<double> existence(inst.data.num_rows(), 0.9);
  auto result =
      UncertainReverseSkyline(inst.data, inst.space, q, existence, 0.9);
  for (RowId r : classic) {
    EXPECT_NE(std::find(result.rows.begin(), result.rows.end(), r),
              result.rows.end())
        << "classic member " << r;
  }
}

TEST(UncertainRsTest, EarlyTerminationCountsEvents) {
  RandomInstance inst(9, 200, {3, 3});  // dense -> many pruners
  Rng rng(10);
  Object q = SampleUniformQuery(inst.data, rng);
  std::vector<double> existence(inst.data.num_rows(), 0.5);
  auto result =
      UncertainReverseSkyline(inst.data, inst.space, q, existence, 0.4);
  EXPECT_GT(result.pruner_scans_cut_short, 0u);
}

TEST(UncertainRsTest, MonteCarloAgreement) {
  // The analytic membership probability matches a Monte-Carlo estimate of
  // Pr[X exists and survives] over sampled worlds.
  RandomInstance inst(11, 40, {4, 4});
  Rng rng(12);
  Object q = SampleUniformQuery(inst.data, rng);
  std::vector<double> existence(inst.data.num_rows());
  for (auto& p : existence) p = rng.UniformDouble(0.2, 0.9);

  const RowId probe = 7;
  const double analytic = UncertainMembershipProbability(
      inst.data, inst.space, q, probe, existence);

  Rng mc(13);
  const int worlds = 20000;
  int hits = 0;
  for (int w = 0; w < worlds; ++w) {
    if (!mc.Bernoulli(existence[probe])) continue;
    // Build the world and test membership of `probe`.
    Dataset world(inst.data.schema());
    RowId probe_in_world = kInvalidRowId;
    for (RowId r = 0; r < inst.data.num_rows(); ++r) {
      if (r == probe) {
        probe_in_world = world.num_rows();
        world.AppendCategoricalRow(std::vector<ValueId>(
            inst.data.RowValues(r), inst.data.RowValues(r) + 2));
        continue;
      }
      if (mc.Bernoulli(existence[r])) {
        world.AppendCategoricalRow(std::vector<ValueId>(
            inst.data.RowValues(r), inst.data.RowValues(r) + 2));
      }
    }
    auto rs = ReverseSkylineOracle(world, inst.space, q);
    hits += std::find(rs.begin(), rs.end(), probe_in_world) != rs.end();
  }
  const double estimate = static_cast<double>(hits) / worlds;
  EXPECT_NEAR(estimate, analytic, 0.02);
}

}  // namespace
}  // namespace nmrs
