#include "metric/str_rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace nmrs {
namespace {

std::vector<double> RandomPoints(size_t n, size_t dims, Rng& rng) {
  std::vector<double> pts(n * dims);
  for (auto& v : pts) v = rng.UniformDouble(0.0, 100.0);
  return pts;
}

TEST(MbrTest, ExpandAndContain) {
  Mbr box(2);
  EXPECT_TRUE(box.empty());
  const double p1[] = {1.0, 5.0};
  const double p2[] = {3.0, 2.0};
  box.ExpandToPoint(p1);
  box.ExpandToPoint(p2);
  EXPECT_FALSE(box.empty());
  EXPECT_DOUBLE_EQ(box.lo(0), 1.0);
  EXPECT_DOUBLE_EQ(box.hi(0), 3.0);
  EXPECT_DOUBLE_EQ(box.lo(1), 2.0);
  EXPECT_DOUBLE_EQ(box.hi(1), 5.0);
  const double inside[] = {2.0, 3.0};
  const double outside[] = {0.0, 3.0};
  EXPECT_TRUE(box.ContainsPoint(inside));
  EXPECT_FALSE(box.ContainsPoint(outside));
}

TEST(MbrTest, MinSquaredDist) {
  Mbr box(2);
  const double p1[] = {0.0, 0.0};
  const double p2[] = {2.0, 2.0};
  box.ExpandToPoint(p1);
  box.ExpandToPoint(p2);
  const double inside[] = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(box.MinSquaredDist(inside), 0.0);
  const double right[] = {5.0, 1.0};
  EXPECT_DOUBLE_EQ(box.MinSquaredDist(right), 9.0);
  const double corner[] = {5.0, 6.0};
  EXPECT_DOUBLE_EQ(box.MinSquaredDist(corner), 9.0 + 16.0);
}

TEST(MbrTest, Intersects) {
  Mbr a(1), b(1), c(1);
  const double a1 = 0, a2 = 2, b1 = 1, b2 = 3, c1 = 5, c2 = 6;
  a.ExpandToPoint(&a1);
  a.ExpandToPoint(&a2);
  b.ExpandToPoint(&b1);
  b.ExpandToPoint(&b2);
  c.ExpandToPoint(&c1);
  c.ExpandToPoint(&c2);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(StrRTreeTest, EmptyTree) {
  StrRTree tree(3);
  tree.BulkLoad({});
  EXPECT_EQ(tree.size(), 0u);
  Mbr all(3);
  const double lo[] = {-1e9, -1e9, -1e9};
  const double hi[] = {1e9, 1e9, 1e9};
  all.ExpandToPoint(lo);
  all.ExpandToPoint(hi);
  EXPECT_TRUE(tree.WindowQuery(all).empty());
  const double origin[] = {0, 0, 0};
  EXPECT_TRUE(tree.KnnQuery(origin, 5).empty());
}

TEST(StrRTreeTest, WindowQueryMatchesLinearScan) {
  Rng rng(1);
  const size_t n = 500, dims = 3;
  auto pts = RandomPoints(n, dims, rng);
  StrRTree tree(dims, 8);
  tree.BulkLoad(pts);
  EXPECT_EQ(tree.size(), n);
  EXPECT_GE(tree.height(), 2u);

  for (int trial = 0; trial < 20; ++trial) {
    Mbr box(dims);
    std::vector<double> a(dims), b(dims);
    for (size_t d = 0; d < dims; ++d) {
      a[d] = rng.UniformDouble(0, 100);
      b[d] = rng.UniformDouble(0, 100);
    }
    box.ExpandToPoint(a.data());
    box.ExpandToPoint(b.data());

    std::vector<RowId> expected;
    for (size_t i = 0; i < n; ++i) {
      if (box.ContainsPoint(pts.data() + i * dims)) expected.push_back(i);
    }
    EXPECT_EQ(tree.WindowQuery(box), expected) << "trial " << trial;
  }
}

TEST(StrRTreeTest, KnnMatchesLinearScan) {
  Rng rng(2);
  const size_t n = 400, dims = 4;
  auto pts = RandomPoints(n, dims, rng);
  StrRTree tree(dims, 16);
  tree.BulkLoad(pts);

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(dims);
    for (auto& v : q) v = rng.UniformDouble(0, 100);
    for (size_t k : {1u, 5u, 20u}) {
      // Linear-scan reference.
      std::vector<std::pair<double, RowId>> dists;
      for (size_t i = 0; i < n; ++i) {
        double sum = 0;
        for (size_t d = 0; d < dims; ++d) {
          const double delta = pts[i * dims + d] - q[d];
          sum += delta * delta;
        }
        dists.push_back({sum, i});
      }
      std::sort(dists.begin(), dists.end());
      std::vector<RowId> expected;
      for (size_t i = 0; i < k; ++i) expected.push_back(dists[i].second);
      EXPECT_EQ(tree.KnnQuery(q.data(), k), expected)
          << "trial " << trial << " k " << k;
    }
  }
}

TEST(StrRTreeTest, CustomIdsReturned) {
  StrRTree tree(1, 4);
  std::vector<double> pts = {1.0, 2.0, 3.0};
  tree.BulkLoad(pts, {100, 200, 300});
  const double q = 2.1;
  auto knn = tree.KnnQuery(&q, 1);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0], 200u);
}

TEST(StrRTreeTest, FanoutRespected) {
  Rng rng(3);
  auto pts = RandomPoints(1000, 2, rng);
  StrRTree tree(2, 10);
  tree.BulkLoad(pts);
  // 1000 points / fanout 10 => at least 100 leaves and height >= 3.
  EXPECT_GE(tree.num_nodes(), 100u);
  EXPECT_GE(tree.height(), 3u);
}

TEST(StrRTreeTest, KnnLargerThanDataset) {
  Rng rng(4);
  auto pts = RandomPoints(10, 2, rng);
  StrRTree tree(2);
  tree.BulkLoad(pts);
  const double q[] = {0, 0};
  EXPECT_EQ(tree.KnnQuery(q, 50).size(), 10u);
}

TEST(StrRTreeTest, IndexPagesPositive) {
  Rng rng(5);
  auto pts = RandomPoints(2000, 5, rng);
  StrRTree tree(5);
  tree.BulkLoad(pts);
  EXPECT_GT(tree.IndexPages(32 * 1024), 0u);
}

TEST(StrRTreeTest, DuplicatePointsAllReturned) {
  StrRTree tree(2, 4);
  std::vector<double> pts;
  for (int i = 0; i < 9; ++i) {
    pts.push_back(5.0);
    pts.push_back(5.0);
  }
  tree.BulkLoad(pts);
  Mbr box(2);
  const double lo[] = {4.0, 4.0};
  const double hi[] = {6.0, 6.0};
  box.ExpandToPoint(lo);
  box.ExpandToPoint(hi);
  EXPECT_EQ(tree.WindowQuery(box).size(), 9u);
}

}  // namespace
}  // namespace nmrs
