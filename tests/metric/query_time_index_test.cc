#include "metric/query_time_index.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

TEST(QueryTimeIndexTest, CostLedgerIsConsistent) {
  RandomInstance inst(3, 2000, {8, 8, 8, 8});
  Rng rng(4);
  Object q = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(1024);
  auto stored = StoredDataset::Create(&disk, inst.data, "d");
  ASSERT_TRUE(stored.ok());
  disk.ResetStats();

  auto cost = BuildQueryTimeRTree(*stored, inst.space, q);
  ASSERT_TRUE(cost.ok()) << cost.status();
  EXPECT_EQ(cost->scan_pages, stored->num_pages());
  EXPECT_GT(cost->data_pages, 0u);
  EXPECT_GT(cost->index_pages, 0u);
  EXPECT_GT(cost->rtree_nodes, 1u);
  EXPECT_GE(cost->rtree_height, 2u);
  // The charged IO covers the scan plus both spills.
  EXPECT_GE(cost->io.TotalReads(), cost->scan_pages);
  EXPECT_GE(cost->io.TotalWrites(), cost->data_pages + cost->index_pages);
  // §5.7's point: construction alone moves at least three database-sized
  // streams (read D + write mapped data which is wider than D + index).
  EXPECT_GE(cost->io.Total(), 3 * stored->num_pages());
}

TEST(QueryTimeIndexTest, ScratchFilesCleanedUp) {
  RandomInstance inst(5, 500, {6, 6});
  Rng rng(6);
  Object q = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(1024);
  auto stored = StoredDataset::Create(&disk, inst.data, "d");
  ASSERT_TRUE(stored.ok());
  const uint64_t pages_before = disk.TotalPages();
  auto cost = BuildQueryTimeRTree(*stored, inst.space, q);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(disk.TotalPages(), pages_before);
}

TEST(QueryTimeIndexTest, TreeAnswersDistanceSpaceQueries) {
  // The nearest object in distance space is the one minimizing the
  // Euclidean norm of per-attribute distances — sanity-check the returned
  // tree against a scan.
  RandomInstance inst(7, 300, {5, 5, 5});
  Rng rng(8);
  Object q = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(1024);
  auto stored = StoredDataset::Create(&disk, inst.data, "d");
  ASSERT_TRUE(stored.ok());

  StrRTree tree(3);
  auto cost = BuildQueryTimeRTree(*stored, inst.space, q, &tree);
  ASSERT_TRUE(cost.ok());
  ASSERT_EQ(tree.size(), inst.data.num_rows());

  const double origin[] = {0.0, 0.0, 0.0};
  auto knn = tree.KnnQuery(origin, 1);
  ASSERT_EQ(knn.size(), 1u);

  double best = 1e300;
  RowId best_row = 0;
  for (RowId r = 0; r < inst.data.num_rows(); ++r) {
    double sum = 0;
    for (AttrId a = 0; a < 3; ++a) {
      const double d =
          inst.space.CatDist(a, inst.data.Value(r, a), q.values[a]);
      sum += d * d;
    }
    if (sum < best) {
      best = sum;
      best_row = r;
    }
  }
  EXPECT_EQ(knn[0], best_row);
}

TEST(QueryTimeIndexTest, ConstructionCostsExceedTrsQueryIo) {
  // The paper's §5.7 conclusion, as a property: on the same data and disk,
  // the query-time index construction alone incurs more page IO than a
  // complete TRS query.
  RandomInstance inst(9, 5000, {10, 10, 10});
  Rng rng(10);
  Object q = SampleUniformQuery(inst.data, rng);
  SimulatedDisk disk(2048);
  auto prepared = PrepareDataset(&disk, inst.data, Algorithm::kTRS, {});
  ASSERT_TRUE(prepared.ok());

  RSOptions opts;
  opts.memory = MemoryBudget::FromFraction(0.10, prepared->stored.num_pages());
  auto trs =
      RunReverseSkyline(*prepared, inst.space, q, Algorithm::kTRS, opts);
  ASSERT_TRUE(trs.ok());

  auto cost = BuildQueryTimeRTree(prepared->stored, inst.space, q);
  ASSERT_TRUE(cost.ok());
  EXPECT_GT(cost->io.Total(), trs->stats.io.Total());
}

TEST(QueryTimeIndexTest, MixedNumericSchemas) {
  Rng rng(11);
  Dataset data = GenerateMixed(400, {4, 4}, 1, 8, rng);
  SimilaritySpace space;
  space.AddCategorical(MakeRandomMatrix(4, rng));
  space.AddCategorical(MakeRandomMatrix(4, rng));
  space.AddNumeric(NumericDissimilarity());
  Object q = SampleUniformQuery(data, rng);
  SimulatedDisk disk(2048);
  auto stored = StoredDataset::Create(&disk, data, "d");
  ASSERT_TRUE(stored.ok());
  StrRTree tree(3);
  auto cost = BuildQueryTimeRTree(*stored, space, q, &tree);
  ASSERT_TRUE(cost.ok()) << cost.status();
  EXPECT_EQ(tree.size(), 400u);
}

}  // namespace
}  // namespace nmrs
