#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace nmrs {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next64() == b.Next64());
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Uniform(bound), bound);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(RngTest, ForkIndependentStreams) {
  Rng rng(31);
  Rng a = rng.Fork();
  Rng b = rng.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next64() == b.Next64());
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(37);
  for (int i = 0; i < 500; ++i) {
    double d = rng.UniformDouble(-2.5, 7.5);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 7.5);
  }
}

}  // namespace
}  // namespace nmrs
