#include "common/status.h"

#include <gtest/gtest.h>

#include "common/statusor.h"

namespace nmrs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad page size");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad page size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad page size");
}

TEST(StatusTest, AllFactoryPredicatesMatch) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
}

TEST(StatusTest, StorageFaultCoversExactlyTheRetryableFamily) {
  // The retry / quarantine machinery keys off IsStorageFault: transient
  // unavailability, exhausted-retry data loss, and checksum corruption.
  EXPECT_TRUE(Status::Unavailable("x").IsStorageFault());
  EXPECT_TRUE(Status::DataLoss("x").IsStorageFault());
  EXPECT_TRUE(Status::Corruption("x").IsStorageFault());
  // Everything else — including OK — is not a storage fault.
  EXPECT_FALSE(Status::OK().IsStorageFault());
  EXPECT_FALSE(Status::NotFound("x").IsStorageFault());
  EXPECT_FALSE(Status::OutOfRange("x").IsStorageFault());
  EXPECT_FALSE(Status::InvalidArgument("x").IsStorageFault());
  EXPECT_FALSE(Status::Internal("x").IsStorageFault());
}

TEST(StatusTest, NewCodesRenderDistinctly) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
  EXPECT_EQ(Status::Unavailable("retry me").ToString(),
            "Unavailable: retry me");
  EXPECT_EQ(Status::DataLoss("gone").ToString(), "DataLoss: gone");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

Status FailsThrough() {
  NMRS_RETURN_IF_ERROR(Status::Corruption("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailsThrough();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "inner");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

StatusOr<int> Doubled(StatusOr<int> in) {
  NMRS_ASSIGN_OR_RETURN(int x, std::move(in));
  return x * 2;
}

TEST(StatusOrTest, AssignOrReturnOnValue) {
  auto r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(StatusOrTest, AssignOrReturnOnError) {
  auto r = Doubled(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(StatusOrTest, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

}  // namespace
}  // namespace nmrs
