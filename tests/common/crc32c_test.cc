#include "common/crc32c.h"

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace nmrs {
namespace {

uint32_t CrcOf(const std::string& s, uint32_t init = 0) {
  return Crc32c(s.data(), s.size(), init);
}

TEST(Crc32cTest, StandardCheckValue) {
  // The CRC-32C check value: every conforming implementation maps the
  // nine ASCII digits to this constant.
  EXPECT_EQ(CrcOf("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, Rfc3720TestVectors) {
  // iSCSI (RFC 3720 B.4) reference vectors.
  std::vector<uint8_t> buf(32, 0x00);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x8A9136AAu);
  buf.assign(32, 0xFF);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x62A8AB43u);
  for (size_t i = 0; i < 32; ++i) buf[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x46DD794Eu);
  for (size_t i = 0; i < 32; ++i) buf[i] = static_cast<uint8_t>(31 - i);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x113FDB5Cu);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32c("x", 0), 0u);
}

TEST(Crc32cTest, ChainingEqualsOneShot) {
  Rng rng(42);
  std::vector<uint8_t> data(4096);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Uniform(256));
  const uint32_t whole = Crc32c(data.data(), data.size());
  // Any split point must reproduce the one-shot CRC via the init chain,
  // including splits that break the slicing-by-8 stride.
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                       size_t{1000}, size_t{4095}, size_t{4096}}) {
    const uint32_t head = Crc32c(data.data(), split);
    const uint32_t chained =
        Crc32c(data.data() + split, data.size() - split, head);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsEverySingleBitFlip) {
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_NE(Crc32c(data.data(), data.size()), clean)
          << "flip at byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<uint8_t>(1 << bit);
    }
  }
}

TEST(Crc32cTest, SensitiveToLengthAndPosition) {
  // A zero byte appended changes the CRC (length is encoded), and the same
  // bytes at a different offset produce a different CRC.
  std::string a = "nmrs";
  std::string b = a + std::string(1, '\0');
  EXPECT_NE(CrcOf(a), CrcOf(b));
  EXPECT_NE(CrcOf("ab" + a), CrcOf(a + "ab"));
}

}  // namespace
}  // namespace nmrs
