#include "common/string_util.h"

#include <gtest/gtest.h>

namespace nmrs {
namespace {

TEST(StrSplitTest, Basic) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrSplitTest, KeepsEmptyTokens) {
  auto parts = StrSplit(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(StrSplitTest, EmptyString) {
  auto parts = StrSplit("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StrJoinTest, RoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, "-"), "x-y-z");
  EXPECT_EQ(StrSplit(StrJoin(parts, ","), ','), parts);
}

TEST(StrJoinTest, SingleAndEmpty) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(1000000000ull), "1,000,000,000");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace nmrs
