#include "altree/al_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generators.h"
#include "order/attribute_order.h"

namespace nmrs {
namespace {

using NodeId = ALTree::NodeId;

ALTree MakeTree(const Schema& schema) {
  return ALTree(schema, IdentityOrder(schema));
}

TEST(ALTreeTest, EmptyTree) {
  Schema s = Schema::Categorical({3, 3});
  ALTree tree = MakeTree(s);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.num_objects(), 0u);
  EXPECT_EQ(tree.num_nodes(), 1u);  // root
  EXPECT_TRUE(tree.Children(ALTree::kRootId).empty());
}

TEST(ALTreeTest, InsertBuildsPath) {
  Schema s = Schema::Categorical({3, 3});
  ALTree tree = MakeTree(s);
  const ValueId row[] = {1, 2};
  tree.Insert(7, row, nullptr);
  EXPECT_EQ(tree.num_objects(), 1u);
  EXPECT_EQ(tree.num_nodes(), 3u);  // root + 2 levels
  ASSERT_EQ(tree.Children(ALTree::kRootId).size(), 1u);
  NodeId l0 = tree.Children(ALTree::kRootId)[0].id;
  EXPECT_EQ(tree.Value(l0), 1u);
  EXPECT_EQ(tree.Level(l0), 0u);
  EXPECT_FALSE(tree.IsLeaf(l0));
  ASSERT_EQ(tree.Children(l0).size(), 1u);
  NodeId leaf = tree.Children(l0)[0].id;
  EXPECT_TRUE(tree.IsLeaf(leaf));
  EXPECT_EQ(tree.Value(leaf), 2u);
  EXPECT_EQ(tree.LeafRows(leaf), (std::vector<RowId>{7}));
}

TEST(ALTreeTest, SharedPrefixesShareNodes) {
  Schema s = Schema::Categorical({3, 3, 3});
  ALTree tree = MakeTree(s);
  const ValueId r1[] = {1, 2, 0};
  const ValueId r2[] = {1, 2, 1};
  const ValueId r3[] = {1, 0, 1};
  tree.Insert(0, r1, nullptr);
  tree.Insert(1, r2, nullptr);
  tree.Insert(2, r3, nullptr);
  // root + {1} + {1,2},{1,0} + 3 leaves = 1 + 1 + 2 + 3 = 7.
  EXPECT_EQ(tree.num_nodes(), 7u);
  EXPECT_EQ(tree.num_objects(), 3u);
  EXPECT_EQ(tree.Descendants(ALTree::kRootId), 3u);
  NodeId l0 = tree.Children(ALTree::kRootId)[0].id;
  EXPECT_EQ(tree.Descendants(l0), 3u);
}

TEST(ALTreeTest, DuplicatesAccumulateAtLeaf) {
  Schema s = Schema::Categorical({2, 2});
  ALTree tree = MakeTree(s);
  const ValueId row[] = {0, 1};
  tree.Insert(10, row, nullptr);
  tree.Insert(20, row, nullptr);
  tree.Insert(30, row, nullptr);
  EXPECT_EQ(tree.num_nodes(), 3u);
  NodeId leaf = tree.FindLeaf(row);
  ASSERT_NE(leaf, ALTree::kInvalidNode);
  EXPECT_EQ(tree.LeafCount(leaf), 3u);
  EXPECT_EQ(tree.LeafRows(leaf), (std::vector<RowId>{10, 20, 30}));
}

TEST(ALTreeTest, AttrOrderControlsLevels) {
  Schema s = Schema::Categorical({2, 5});
  ALTree tree(s, {1, 0});  // attribute 1 at the root level
  const ValueId row[] = {1, 4};  // attr0=1, attr1=4
  tree.Insert(0, row, nullptr);
  NodeId l0 = tree.Children(ALTree::kRootId)[0].id;
  EXPECT_EQ(tree.Value(l0), 4u);  // attr 1's value
  NodeId leaf = tree.Children(l0)[0].id;
  EXPECT_EQ(tree.Value(leaf), 1u);
}

TEST(ALTreeTest, FindLeafMissing) {
  Schema s = Schema::Categorical({2, 2});
  ALTree tree = MakeTree(s);
  const ValueId row[] = {0, 0};
  const ValueId other[] = {1, 1};
  tree.Insert(0, row, nullptr);
  EXPECT_EQ(tree.FindLeaf(other), ALTree::kInvalidNode);
}

TEST(ALTreeTest, TempRemoveHidesAndRestores) {
  Schema s = Schema::Categorical({2, 2});
  ALTree tree = MakeTree(s);
  const ValueId row[] = {0, 1};
  tree.Insert(1, row, nullptr);
  tree.Insert(2, row, nullptr);

  NodeId leaf = tree.TempRemove(row);
  EXPECT_EQ(tree.num_objects(), 1u);
  EXPECT_EQ(tree.LeafCount(leaf), 1u);
  EXPECT_EQ(tree.LeafRows(leaf).size(), 2u);  // ids not touched

  tree.TempRestore(leaf);
  EXPECT_EQ(tree.num_objects(), 2u);
  EXPECT_EQ(tree.LeafCount(leaf), 2u);
}

TEST(ALTreeTest, TempRemoveSingletonZeroesPath) {
  Schema s = Schema::Categorical({2, 2});
  ALTree tree = MakeTree(s);
  const ValueId row[] = {0, 1};
  tree.Insert(1, row, nullptr);
  NodeId leaf = tree.TempRemove(row);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Descendants(tree.Parent(leaf)), 0u);
  tree.TempRestore(leaf);
  EXPECT_EQ(tree.num_objects(), 1u);
}

TEST(ALTreeTest, RemoveLeafUpdatesCounts) {
  Schema s = Schema::Categorical({2, 2});
  ALTree tree = MakeTree(s);
  const ValueId a[] = {0, 0};
  const ValueId b[] = {0, 1};
  tree.Insert(1, a, nullptr);
  tree.Insert(2, a, nullptr);
  tree.Insert(3, b, nullptr);
  NodeId leaf_a = tree.FindLeaf(a);
  tree.RemoveLeaf(leaf_a);
  EXPECT_EQ(tree.num_objects(), 1u);
  EXPECT_EQ(tree.LeafCount(leaf_a), 0u);
  EXPECT_TRUE(tree.LeafRows(leaf_a).empty());
  // The shared level-0 node keeps the sibling's count.
  NodeId l0 = tree.Children(ALTree::kRootId)[0].id;
  EXPECT_EQ(tree.Descendants(l0), 1u);
}

TEST(ALTreeTest, RemoveLeafEntryEvictsOne) {
  Schema s = Schema::Categorical({2, 2});
  ALTree tree = MakeTree(s);
  const ValueId row[] = {1, 1};
  tree.Insert(10, row, nullptr);
  tree.Insert(20, row, nullptr);
  tree.Insert(30, row, nullptr);
  NodeId leaf = tree.FindLeaf(row);
  tree.RemoveLeafEntry(leaf, 1);  // evict id 20
  EXPECT_EQ(tree.LeafCount(leaf), 2u);
  EXPECT_EQ(tree.LeafRows(leaf), (std::vector<RowId>{10, 30}));
  EXPECT_EQ(tree.num_objects(), 2u);
}

TEST(ALTreeTest, NumericPayloadFollowsEntries) {
  Schema s = Schema::Categorical({2});
  AttributeInfo num;
  num.is_numeric = true;
  num.cardinality = 4;
  num.range = {0.0, 1.0};
  s.AddAttribute(num);
  ALTree tree = MakeTree(s);
  const ValueId row[] = {1, 2};
  const double n1[] = {0.0, 0.55};
  const double n2[] = {0.0, 0.60};
  tree.Insert(1, row, n1);
  tree.Insert(2, row, n2);
  ASSERT_TRUE(tree.has_numerics());
  NodeId leaf = tree.FindLeaf(row);
  EXPECT_DOUBLE_EQ(tree.LeafNumerics(leaf, 0)[1], 0.55);
  EXPECT_DOUBLE_EQ(tree.LeafNumerics(leaf, 1)[1], 0.60);
  tree.RemoveLeafEntry(leaf, 0);
  EXPECT_DOUBLE_EQ(tree.LeafNumerics(leaf, 0)[1], 0.60);
}

TEST(ALTreeTest, PrepareForSearchOrdersChildrenAscending) {
  Schema s = Schema::Categorical({3, 2});
  ALTree tree = MakeTree(s);
  const ValueId rows[][2] = {{0, 0}, {1, 0}, {1, 1}, {2, 0}, {2, 1}, {2, 1}};
  for (size_t i = 0; i < 6; ++i) tree.Insert(i, rows[i], nullptr);
  tree.PrepareForSearch();
  const auto& kids = tree.Children(ALTree::kRootId);
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_LE(tree.Descendants(kids[0].id), tree.Descendants(kids[1].id));
  EXPECT_LE(tree.Descendants(kids[1].id), tree.Descendants(kids[2].id));
  EXPECT_EQ(tree.Descendants(kids[2].id), 3u);  // the value-2 subtree
}

TEST(ALTreeTest, ForEachActiveLeafSkipsRemoved) {
  Schema s = Schema::Categorical({2, 2});
  ALTree tree = MakeTree(s);
  const ValueId a[] = {0, 0};
  const ValueId b[] = {1, 1};
  tree.Insert(1, a, nullptr);
  tree.Insert(2, b, nullptr);
  tree.RemoveLeaf(tree.FindLeaf(a));
  std::vector<RowId> seen;
  tree.ForEachActiveLeaf([&](NodeId l) {
    for (RowId r : tree.LeafRows(l)) seen.push_back(r);
  });
  EXPECT_EQ(seen, (std::vector<RowId>{2}));
}

TEST(ALTreeTest, ClearResetsEverything) {
  Schema s = Schema::Categorical({2, 2});
  ALTree tree = MakeTree(s);
  const ValueId row[] = {0, 0};
  tree.Insert(1, row, nullptr);
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.num_nodes(), 1u);
  tree.Insert(2, row, nullptr);  // usable after Clear
  EXPECT_EQ(tree.num_objects(), 1u);
}

TEST(ALTreeTest, LogicalMemoryGrowsWithNodes) {
  Schema s = Schema::Categorical({4, 4});
  ALTree tree = MakeTree(s);
  const size_t empty_bytes = tree.LogicalMemoryBytes();
  const ValueId row[] = {1, 1};
  tree.Insert(1, row, nullptr);
  EXPECT_GT(tree.LogicalMemoryBytes(), empty_bytes);
  // Duplicates add no nodes -> logical size stays flat (categorical).
  const size_t one_bytes = tree.LogicalMemoryBytes();
  tree.Insert(2, row, nullptr);
  EXPECT_EQ(tree.LogicalMemoryBytes(), one_bytes);
}

TEST(ALTreeTest, PrefixCompressionBeatsFlatOnSortedData) {
  // On multi-attribute-sorted, low-cardinality data the tree's logical
  // footprint undercuts the flat row image (m * 4 bytes per row).
  Rng rng(5);
  Dataset d = GenerateNormal(2000, {10, 10, 10, 10}, rng);
  auto order = IdentityOrder(d.schema());
  ALTree tree(d.schema(), order);
  for (RowId r = 0; r < d.num_rows(); ++r) {
    tree.Insert(r, d.RowValues(r), nullptr);
  }
  EXPECT_LT(tree.LogicalMemoryBytes(), d.num_rows() * 4 * sizeof(ValueId));
}

TEST(ALTreeTest, DescendantInvariantHolds) {
  // descendants(node) == sum of descendants(children) for internal nodes,
  // == leaf count for leaves, after a random workload of ops.
  Rng rng(6);
  Dataset d = GenerateUniform(300, {5, 5, 5}, rng);
  ALTree tree(d.schema(), IdentityOrder(d.schema()));
  for (RowId r = 0; r < d.num_rows(); ++r) {
    tree.Insert(r, d.RowValues(r), nullptr);
  }
  // Remove some leaves.
  std::vector<NodeId> leaves;
  tree.ForEachActiveLeaf([&](NodeId l) { leaves.push_back(l); });
  for (size_t i = 0; i < leaves.size(); i += 3) tree.RemoveLeaf(leaves[i]);

  for (NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (tree.IsLeaf(n) && n != ALTree::kRootId) {
      EXPECT_EQ(tree.Descendants(n), tree.LeafRows(n).size());
    } else {
      uint64_t sum = 0;
      for (const auto& c : tree.Children(n)) sum += tree.Descendants(c.id);
      EXPECT_EQ(tree.Descendants(n), sum);
    }
  }
}

}  // namespace
}  // namespace nmrs
