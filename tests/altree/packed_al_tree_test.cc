#include "altree/packed_al_tree.h"

#include <gtest/gtest.h>

#include "core/dominance.h"
#include "data/generators.h"
#include "order/attribute_order.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

ALTree BuildTree(const Dataset& data) {
  ALTree tree(data.schema(), AscendingCardinalityOrder(data.schema()));
  for (RowId r = 0; r < data.num_rows(); ++r) {
    tree.Insert(r, data.RowValues(r), data.RowNumerics(r));
  }
  return tree;
}

TEST(PackedALTreeTest, RoundTripStructure) {
  RandomInstance inst(1, 500, {5, 4, 6});
  ALTree tree = BuildTree(inst.data);
  SimulatedDisk disk(512);
  auto packed = PackedALTree::Write(tree, &disk, "packed");
  ASSERT_TRUE(packed.ok()) << packed.status();
  EXPECT_EQ(packed->num_objects(), tree.num_objects());
  EXPECT_EQ(packed->num_nodes(), tree.num_nodes());
  EXPECT_GT(packed->num_pages(), 0u);
  EXPECT_GT(packed->LocatorBytes(), 0u);
}

TEST(PackedALTreeTest, FindLeafAgreesWithInMemoryTree) {
  RandomInstance inst(2, 400, {4, 5, 3});
  ALTree tree = BuildTree(inst.data);
  SimulatedDisk disk(512);
  auto packed = PackedALTree::Write(tree, &disk, "packed");
  ASSERT_TRUE(packed.ok());

  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    // Half lookups of present rows, half random (possibly absent) combos.
    std::vector<ValueId> values(3);
    if (trial % 2 == 0) {
      const RowId r = rng.Uniform(inst.data.num_rows());
      for (AttrId a = 0; a < 3; ++a) values[a] = inst.data.Value(r, a);
    } else {
      for (AttrId a = 0; a < 3; ++a) {
        values[a] = static_cast<ValueId>(
            rng.Uniform(inst.data.schema().attribute(a).cardinality));
      }
    }
    auto rows = packed->FindLeaf(values.data());
    ASSERT_TRUE(rows.ok());
    ALTree::NodeId leaf = tree.FindLeaf(values.data());
    if (leaf == ALTree::kInvalidNode) {
      EXPECT_TRUE(rows->empty());
    } else {
      EXPECT_EQ(*rows, tree.LeafRows(leaf));
    }
  }
}

TEST(PackedALTreeTest, SiblingScansHitThePageCache) {
  RandomInstance inst(4, 2000, {6, 6, 6});
  ALTree tree = BuildTree(inst.data);
  SimulatedDisk disk;  // 32 KiB pages: the whole tree is a few pages
  auto packed = PackedALTree::Write(tree, &disk, "packed");
  ASSERT_TRUE(packed.ok());
  disk.ResetStats();
  std::vector<ValueId> values = {0, 0, 0};
  ASSERT_TRUE(packed->FindLeaf(values.data()).ok());
  // A root-to-leaf walk over BFS-packed pages touches at most one page
  // per level plus the root page.
  EXPECT_LE(disk.stats().TotalReads(), 4u);
}

TEST(PackedALTreeTest, IsPrunableAgreesWithScanOracle) {
  RandomInstance inst(5, 600, {5, 5, 5});
  ALTree tree = BuildTree(inst.data);
  SimulatedDisk disk(1024);
  auto packed = PackedALTree::Write(tree, &disk, "packed");
  ASSERT_TRUE(packed.ok());

  Rng rng(6);
  Object q = SampleUniformQuery(inst.data, rng);
  PruneContext ctx(inst.space, inst.data.schema(), q, {});
  for (int trial = 0; trial < 40; ++trial) {
    const RowId c = rng.Uniform(inst.data.num_rows());
    // Oracle: any other row that prunes c?
    ctx.SetCandidate(inst.data.RowValues(c), nullptr);
    bool expected = false;
    uint64_t scan_checks = 0;
    for (RowId y = 0; y < inst.data.num_rows() && !expected; ++y) {
      if (y == c) continue;
      expected =
          ctx.Prunes(inst.data.RowValues(y), nullptr, &scan_checks);
    }
    uint64_t checks = 0;
    auto got = packed->IsPrunable(inst.space, q, inst.data.RowValues(c), c,
                                  &checks);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected) << "candidate " << c;
    EXPECT_GT(checks, 0u);
  }
}

TEST(PackedALTreeTest, SelfIsNotItsOwnPrunerButTwinIs) {
  Dataset data(Schema::Categorical({3, 3}));
  data.AppendCategoricalRow({1, 1});  // row 0
  data.AppendCategoricalRow({1, 1});  // row 1 (twin)
  data.AppendCategoricalRow({2, 0});  // row 2, unique
  Rng rng(7);
  SimilaritySpace space = MakeRandomSpace({3, 3}, rng);
  ALTree tree = BuildTree(data);
  SimulatedDisk disk(512);
  auto packed = PackedALTree::Write(tree, &disk, "packed");
  ASSERT_TRUE(packed.ok());

  Object q({0, 2});  // away from both rows
  // Row 0 has a twin (row 1) -> prunable.
  auto p0 = packed->IsPrunable(space, q, data.RowValues(0), 0);
  ASSERT_TRUE(p0.ok());
  EXPECT_TRUE(*p0);
  // Delete the twin scenario: row 2 is unique; it is only prunable if some
  // *different* row qualifies. Verify the self-exclusion works by checking
  // against the oracle.
  PruneContext ctx(space, data.schema(), q, {});
  ctx.SetCandidate(data.RowValues(2), nullptr);
  uint64_t scratch = 0;
  bool expected = false;
  for (RowId y = 0; y < 2; ++y) {
    expected = expected || ctx.Prunes(data.RowValues(y), nullptr, &scratch);
  }
  auto p2 = packed->IsPrunable(space, q, data.RowValues(2), 2);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p2, expected);
}

TEST(PackedALTreeTest, NumericPayloadRoundTrips) {
  Rng rng(8);
  Dataset data = GenerateMixed(200, {4}, 1, 4, rng);
  ALTree tree(data.schema(), AscendingCardinalityOrder(data.schema()));
  for (RowId r = 0; r < data.num_rows(); ++r) {
    tree.Insert(r, data.RowValues(r), data.RowNumerics(r));
  }
  SimulatedDisk disk(1024);
  auto packed = PackedALTree::Write(tree, &disk, "packed");
  ASSERT_TRUE(packed.ok());

  // Fetch a leaf and compare its numeric payload with the source tree.
  const RowId probe = 17;
  auto rows = packed->FindLeaf(data.RowValues(probe));
  ASSERT_TRUE(rows.ok());
  ALTree::NodeId leaf = tree.FindLeaf(data.RowValues(probe));
  ASSERT_NE(leaf, ALTree::kInvalidNode);
  EXPECT_EQ(*rows, tree.LeafRows(leaf));
}

TEST(PackedALTreeTest, EmptyTree) {
  Schema s = Schema::Categorical({3, 3});
  ALTree tree(s, IdentityOrder(s));
  SimulatedDisk disk(512);
  auto packed = PackedALTree::Write(tree, &disk, "packed");
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->num_objects(), 0u);
  std::vector<ValueId> values = {0, 0};
  auto rows = packed->FindLeaf(values.data());
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(PackedALTreeTest, RemovedLeavesNotSerialized) {
  Dataset data(Schema::Categorical({3, 3}));
  data.AppendCategoricalRow({0, 0});
  data.AppendCategoricalRow({1, 1});
  data.AppendCategoricalRow({2, 2});
  ALTree tree = BuildTree(data);
  tree.RemoveLeaf(tree.FindLeaf(data.RowValues(1)));
  SimulatedDisk disk(512);
  auto packed = PackedALTree::Write(tree, &disk, "packed");
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->num_objects(), 2u);
  auto gone = packed->FindLeaf(data.RowValues(1));
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->empty());
  auto kept = packed->FindLeaf(data.RowValues(0));
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(*kept, (std::vector<RowId>{0}));
}

TEST(PackedALTreeTest, TinyPagesStillWork) {
  RandomInstance inst(9, 300, {10, 10}, /*normal_distribution=*/false);
  ALTree tree = BuildTree(inst.data);
  SimulatedDisk disk(128);  // forces many pages
  auto packed = PackedALTree::Write(tree, &disk, "packed");
  ASSERT_TRUE(packed.ok()) << packed.status();
  EXPECT_GT(packed->num_pages(), 3u);
  Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    const RowId r = rng.Uniform(inst.data.num_rows());
    auto rows = packed->FindLeaf(inst.data.RowValues(r));
    ASSERT_TRUE(rows.ok());
    EXPECT_NE(std::find(rows->begin(), rows->end(), r), rows->end());
  }
}

TEST(PackedALTreeTest, OversizedLeafRecordRejected) {
  // 20 duplicates -> a 168-byte leaf record that cannot fit a 64-byte
  // page: Write must fail with InvalidArgument, not corrupt the file.
  Dataset data(Schema::Categorical({2, 2}));
  for (int i = 0; i < 20; ++i) data.AppendCategoricalRow({0, 0});
  ALTree tree = BuildTree(data);
  SimulatedDisk disk(64);
  auto packed = PackedALTree::Write(tree, &disk, "packed");
  EXPECT_TRUE(packed.status().IsInvalidArgument());
}

}  // namespace
}  // namespace nmrs
