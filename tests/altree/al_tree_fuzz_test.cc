// Differential test: the AL-Tree against a trivially correct reference
// model (a map from value-vector to the multiset of row ids) under a
// randomized workload of Insert / TempRemove+Restore / RemoveLeaf /
// RemoveLeafEntry operations.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "altree/al_tree.h"
#include "common/rng.h"
#include "order/attribute_order.h"

namespace nmrs {
namespace {

using Key = std::vector<ValueId>;

class ReferenceModel {
 public:
  void Insert(const Key& key, RowId id) { rows_[key].push_back(id); }

  void RemoveAll(const Key& key) { rows_.erase(key); }

  void RemoveOne(const Key& key, size_t entry) {
    auto& v = rows_[key];
    v.erase(v.begin() + static_cast<ptrdiff_t>(entry));
    if (v.empty()) rows_.erase(key);
  }

  uint64_t TotalObjects() const {
    uint64_t n = 0;
    for (const auto& [k, v] : rows_) n += v.size();
    return n;
  }

  const std::map<Key, std::vector<RowId>>& rows() const { return rows_; }

 private:
  std::map<Key, std::vector<RowId>> rows_;
};

void ExpectTreeMatchesModel(const ALTree& tree, const ReferenceModel& model,
                            const std::vector<AttrId>& attr_order,
                            const Schema& schema) {
  EXPECT_EQ(tree.num_objects(), model.TotalObjects());

  // Every model group must be an active leaf with the same ids.
  for (const auto& [key, ids] : model.rows()) {
    ALTree::NodeId leaf = tree.FindLeaf(key.data());
    ASSERT_NE(leaf, ALTree::kInvalidNode);
    EXPECT_EQ(tree.LeafRows(leaf), ids);
    EXPECT_EQ(tree.LeafCount(leaf), ids.size());
  }

  // Every active tree leaf must exist in the model with matching values.
  uint64_t active_leaves = 0;
  std::vector<ValueId> values(schema.num_attributes());
  const_cast<ALTree&>(tree).ForEachActiveLeaf([&](ALTree::NodeId leaf) {
    ++active_leaves;
    // Reconstruct the leaf's values by walking parents.
    ALTree::NodeId cur = leaf;
    while (cur != ALTree::kRootId) {
      values[attr_order[tree.Level(cur)]] = tree.Value(cur);
      cur = tree.Parent(cur);
    }
    auto it = model.rows().find(values);
    ASSERT_NE(it, model.rows().end());
    EXPECT_EQ(tree.LeafRows(leaf), it->second);
  });
  EXPECT_EQ(active_leaves, model.rows().size());

  // Descendant-count invariant.
  for (ALTree::NodeId n = 0; n < tree.num_nodes(); ++n) {
    if (n != ALTree::kRootId && tree.IsLeaf(n)) {
      EXPECT_EQ(tree.Descendants(n), tree.LeafRows(n).size());
    } else {
      uint64_t sum = 0;
      for (const auto& c : tree.Children(n)) sum += tree.Descendants(c.id);
      EXPECT_EQ(tree.Descendants(n), sum);
    }
  }
}

class ALTreeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ALTreeFuzz, RandomWorkloadMatchesReference) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const std::vector<size_t> cards = {3, 4, 2};
  Schema schema = Schema::Categorical(cards);
  const auto attr_order = AscendingCardinalityOrder(schema);
  ALTree tree(schema, attr_order);
  ReferenceModel model;

  RowId next_id = 0;
  for (int step = 0; step < 400; ++step) {
    const uint64_t op = rng.Uniform(10);
    if (op < 5 || model.TotalObjects() == 0) {
      // Insert a random object.
      Key key(cards.size());
      for (size_t a = 0; a < cards.size(); ++a) {
        key[a] = static_cast<ValueId>(rng.Uniform(cards[a]));
      }
      tree.Insert(next_id, key.data(), nullptr);
      model.Insert(key, next_id);
      ++next_id;
    } else {
      // Pick a random existing group.
      const auto& groups = model.rows();
      auto it = groups.begin();
      std::advance(it, rng.Uniform(groups.size()));
      const Key key = it->first;
      ALTree::NodeId leaf = tree.FindLeaf(key.data());
      ASSERT_NE(leaf, ALTree::kInvalidNode);
      if (op < 7) {
        // TempRemove + IsLeaf-neutral restore (counts must round-trip).
        const uint64_t before = tree.num_objects();
        tree.TempRemoveLeaf(leaf);
        EXPECT_EQ(tree.num_objects(), before - 1);
        tree.TempRestore(leaf);
        EXPECT_EQ(tree.num_objects(), before);
      } else if (op == 7) {
        tree.RemoveLeaf(leaf);
        model.RemoveAll(key);
      } else {
        const size_t entry = rng.Uniform(it->second.size());
        tree.RemoveLeafEntry(leaf, entry);
        model.RemoveOne(key, entry);
      }
    }
    if (step % 50 == 0) {
      ExpectTreeMatchesModel(tree, model, attr_order, schema);
    }
  }
  ExpectTreeMatchesModel(tree, model, attr_order, schema);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ALTreeFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace nmrs
