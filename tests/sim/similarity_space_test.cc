#include "sim/similarity_space.h"

#include <gtest/gtest.h>

namespace nmrs {
namespace {

TEST(SimilaritySpaceTest, MixedAttributes) {
  SimilaritySpace space;
  DissimilarityMatrix m(3);
  m.SetSymmetric(0, 1, 0.4);
  space.AddCategorical(std::move(m));
  space.AddNumeric(NumericDissimilarity(2.0));

  ASSERT_EQ(space.num_attributes(), 2u);
  EXPECT_FALSE(space.IsNumeric(0));
  EXPECT_TRUE(space.IsNumeric(1));
  EXPECT_EQ(space.Cardinality(0), 3u);
  EXPECT_DOUBLE_EQ(space.CatDist(0, 0, 1), 0.4);
  EXPECT_DOUBLE_EQ(space.NumDist(1, 1.0, 2.5), 3.0);
}

TEST(SimilaritySpaceTest, MatrixAccessor) {
  SimilaritySpace space;
  DissimilarityMatrix m(2);
  m.SetSymmetric(0, 1, 0.9);
  space.AddCategorical(std::move(m));
  EXPECT_DOUBLE_EQ(space.matrix(0).Dist(1, 0), 0.9);
}

TEST(SimilaritySpaceTest, NumericAccessor) {
  SimilaritySpace space;
  space.AddNumeric(NumericDissimilarity(3.0));
  EXPECT_DOUBLE_EQ(space.numeric(0).scale(), 3.0);
}

TEST(MakeRandomSpaceTest, OneMatrixPerCardinality) {
  Rng rng(1);
  auto space = MakeRandomSpace({5, 10, 2}, rng);
  ASSERT_EQ(space.num_attributes(), 3u);
  EXPECT_EQ(space.Cardinality(0), 5u);
  EXPECT_EQ(space.Cardinality(1), 10u);
  EXPECT_EQ(space.Cardinality(2), 2u);
  for (AttrId a = 0; a < 3; ++a) {
    EXPECT_TRUE(space.matrix(a).Validate().ok());
  }
}

TEST(MakeRandomSpaceTest, Deterministic) {
  Rng r1(7), r2(7);
  auto s1 = MakeRandomSpace({4, 4}, r1);
  auto s2 = MakeRandomSpace({4, 4}, r2);
  for (AttrId a = 0; a < 2; ++a) {
    for (ValueId x = 0; x < 4; ++x) {
      for (ValueId y = 0; y < 4; ++y) {
        EXPECT_EQ(s1.CatDist(a, x, y), s2.CatDist(a, x, y));
      }
    }
  }
}

TEST(SimilaritySpaceTest, AppendCategoricalValueGrowsOneDomain) {
  Rng rng(13);
  SimilaritySpace space = MakeRandomSpace({3, 4}, rng);
  const ValueId id = space.AppendCategoricalValue(0, {0.1, 0.2, 0.3},
                                                  {0.4, 0.5, 0.6});
  EXPECT_EQ(id, 3u);
  EXPECT_EQ(space.Cardinality(0), 4u);
  EXPECT_EQ(space.Cardinality(1), 4u);  // other attrs untouched
  EXPECT_EQ(space.CatDist(0, 1, 3), 0.2);
  EXPECT_EQ(space.CatDist(0, 3, 2), 0.6);
  EXPECT_EQ(space.CatDist(0, 3, 3), 0.0);
}

TEST(SimilaritySpaceTest, AddObjectValueGrowsExactlyTheNewDomains) {
  Rng rng(14);
  SimilaritySpace space = MakeRandomSpace({3, 2}, rng);
  const double d01 = space.CatDist(0, 0, 1);
  // Attribute 0 stays in-domain, attribute 1 introduces value 2.
  ASSERT_TRUE(space.AddObjectValue({1, 2}, {{}, {0.25, 0.75}}).ok());
  EXPECT_EQ(space.Cardinality(0), 3u);
  EXPECT_EQ(space.Cardinality(1), 3u);
  EXPECT_EQ(space.CatDist(0, 0, 1), d01);
  // Symmetric growth: d(a, new) == d(new, a).
  EXPECT_EQ(space.CatDist(1, 0, 2), 0.25);
  EXPECT_EQ(space.CatDist(1, 2, 0), 0.25);
  EXPECT_EQ(space.CatDist(1, 1, 2), 0.75);
}

TEST(SimilaritySpaceTest, AddObjectValueValidatesBeforeMutating) {
  Rng rng(15);
  SimilaritySpace space = MakeRandomSpace({3, 3}, rng);
  // Value 4 on attribute 0 would skip id 3 -> rejected, nothing grows,
  // even though attribute 1's growth request was well-formed.
  auto s = space.AddObjectValue({4, 3}, {{0.1, 0.2, 0.3}, {0.1, 0.2, 0.3}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(space.Cardinality(0), 3u);
  EXPECT_EQ(space.Cardinality(1), 3u);
  // Wrong distance-vector length: also rejected atomically.
  s = space.AddObjectValue({3, 0}, {{0.1}, {}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(space.Cardinality(0), 3u);
  // Arity mismatch.
  EXPECT_EQ(space.AddObjectValue({0}, {{}}).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace nmrs
