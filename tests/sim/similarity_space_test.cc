#include "sim/similarity_space.h"

#include <gtest/gtest.h>

namespace nmrs {
namespace {

TEST(SimilaritySpaceTest, MixedAttributes) {
  SimilaritySpace space;
  DissimilarityMatrix m(3);
  m.SetSymmetric(0, 1, 0.4);
  space.AddCategorical(std::move(m));
  space.AddNumeric(NumericDissimilarity(2.0));

  ASSERT_EQ(space.num_attributes(), 2u);
  EXPECT_FALSE(space.IsNumeric(0));
  EXPECT_TRUE(space.IsNumeric(1));
  EXPECT_EQ(space.Cardinality(0), 3u);
  EXPECT_DOUBLE_EQ(space.CatDist(0, 0, 1), 0.4);
  EXPECT_DOUBLE_EQ(space.NumDist(1, 1.0, 2.5), 3.0);
}

TEST(SimilaritySpaceTest, MatrixAccessor) {
  SimilaritySpace space;
  DissimilarityMatrix m(2);
  m.SetSymmetric(0, 1, 0.9);
  space.AddCategorical(std::move(m));
  EXPECT_DOUBLE_EQ(space.matrix(0).Dist(1, 0), 0.9);
}

TEST(SimilaritySpaceTest, NumericAccessor) {
  SimilaritySpace space;
  space.AddNumeric(NumericDissimilarity(3.0));
  EXPECT_DOUBLE_EQ(space.numeric(0).scale(), 3.0);
}

TEST(MakeRandomSpaceTest, OneMatrixPerCardinality) {
  Rng rng(1);
  auto space = MakeRandomSpace({5, 10, 2}, rng);
  ASSERT_EQ(space.num_attributes(), 3u);
  EXPECT_EQ(space.Cardinality(0), 5u);
  EXPECT_EQ(space.Cardinality(1), 10u);
  EXPECT_EQ(space.Cardinality(2), 2u);
  for (AttrId a = 0; a < 3; ++a) {
    EXPECT_TRUE(space.matrix(a).Validate().ok());
  }
}

TEST(MakeRandomSpaceTest, Deterministic) {
  Rng r1(7), r2(7);
  auto s1 = MakeRandomSpace({4, 4}, r1);
  auto s2 = MakeRandomSpace({4, 4}, r2);
  for (AttrId a = 0; a < 2; ++a) {
    for (ValueId x = 0; x < 4; ++x) {
      for (ValueId y = 0; y < 4; ++y) {
        EXPECT_EQ(s1.CatDist(a, x, y), s2.CatDist(a, x, y));
      }
    }
  }
}

}  // namespace
}  // namespace nmrs
