#include "sim/numeric_dissimilarity.h"

#include <gtest/gtest.h>

namespace nmrs {
namespace {

TEST(NumericDissimilarityTest, AbsoluteDifference) {
  NumericDissimilarity d;
  EXPECT_DOUBLE_EQ(d.Dist(3.0, 7.5), 4.5);
  EXPECT_DOUBLE_EQ(d.Dist(7.5, 3.0), 4.5);
  EXPECT_DOUBLE_EQ(d.Dist(2.0, 2.0), 0.0);
}

TEST(NumericDissimilarityTest, ScaleApplies) {
  NumericDissimilarity d(2.0);
  EXPECT_DOUBLE_EQ(d.Dist(0.0, 3.0), 6.0);
}

TEST(NumericDissimilarityTest, MinDistDisjointIntervals) {
  NumericDissimilarity d;
  EXPECT_DOUBLE_EQ(d.MinDist({0, 1}, {3, 4}), 2.0);
  EXPECT_DOUBLE_EQ(d.MinDist({3, 4}, {0, 1}), 2.0);
}

TEST(NumericDissimilarityTest, MinDistOverlappingIsZero) {
  NumericDissimilarity d;
  EXPECT_DOUBLE_EQ(d.MinDist({0, 2}, {1, 3}), 0.0);
  EXPECT_DOUBLE_EQ(d.MinDist({0, 5}, {1, 2}), 0.0);  // nested
  EXPECT_DOUBLE_EQ(d.MinDist({0, 1}, {1, 2}), 0.0);  // touching
}

TEST(NumericDissimilarityTest, MaxDistFarCorners) {
  NumericDissimilarity d;
  EXPECT_DOUBLE_EQ(d.MaxDist({0, 1}, {3, 4}), 4.0);
  EXPECT_DOUBLE_EQ(d.MaxDist({0, 4}, {1, 2}), 3.0);  // nested: 0 -> 2... max(|2-0|, |4-1|) = 3
  EXPECT_DOUBLE_EQ(d.MaxDist({1, 2}, {1, 2}), 1.0);
}

TEST(NumericDissimilarityTest, PointIntervals) {
  NumericDissimilarity d;
  EXPECT_DOUBLE_EQ(d.MinDist({2, 2}, {5, 5}), 3.0);
  EXPECT_DOUBLE_EQ(d.MaxDist({2, 2}, {5, 5}), 3.0);
}

TEST(NumericDissimilarityTest, BoundsBracketExactDistances) {
  NumericDissimilarity d(1.5);
  const Interval a{1.0, 3.0};
  const Interval b{2.5, 6.0};
  // Sample points within the intervals; every exact distance must lie
  // within [MinDist, MaxDist].
  for (double x = 1.0; x <= 3.0; x += 0.25) {
    for (double y = 2.5; y <= 6.0; y += 0.25) {
      const double exact = d.Dist(x, y);
      EXPECT_GE(exact + 1e-12, d.MinDist(a, b));
      EXPECT_LE(exact - 1e-12, d.MaxDist(a, b));
    }
  }
}

TEST(IntervalTest, ContainsAndWidth) {
  Interval i{1.0, 4.0};
  EXPECT_TRUE(i.Contains(1.0));
  EXPECT_TRUE(i.Contains(4.0));
  EXPECT_TRUE(i.Contains(2.5));
  EXPECT_FALSE(i.Contains(0.999));
  EXPECT_FALSE(i.Contains(4.001));
  EXPECT_DOUBLE_EQ(i.width(), 3.0);
}

}  // namespace
}  // namespace nmrs
