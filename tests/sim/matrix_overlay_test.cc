#include "sim/matrix_overlay.h"

#include <gtest/gtest.h>

#include "sim/numeric_dissimilarity.h"

namespace nmrs {
namespace {

SimilaritySpace MakeSpace(const std::vector<size_t>& cards, uint64_t seed,
                          bool symmetric = false) {
  Rng rng(seed);
  RandomMatrixOptions opts;
  opts.symmetric = symmetric;
  SimilaritySpace space;
  for (size_t k : cards) space.AddCategorical(MakeRandomMatrix(k, rng, opts));
  return space;
}

TEST(MatrixOverlayTest, EmptyOverlayIsTransparent) {
  SimilaritySpace space = MakeSpace({4, 6}, 1);
  MatrixOverlay overlay(space);
  EXPECT_TRUE(overlay.empty());
  EXPECT_EQ(overlay.num_entries(), 0u);
  for (AttrId a = 0; a < 2; ++a) {
    EXPECT_FALSE(overlay.TouchesAttr(a));
    for (ValueId x = 0; x < space.Cardinality(a); ++x) {
      EXPECT_FALSE(overlay.TouchesColumn(a, x));
      for (ValueId y = 0; y < space.Cardinality(a); ++y) {
        EXPECT_EQ(overlay.Dist(a, x, y), space.CatDist(a, x, y));
      }
    }
  }
}

TEST(MatrixOverlayTest, SetPatchesOneDirectionOnly) {
  SimilaritySpace space = MakeSpace({5}, 2);
  MatrixOverlay overlay(space);
  ASSERT_TRUE(overlay.Set(0, 1, 3, 7.5).ok());
  EXPECT_EQ(overlay.Dist(0, 1, 3), 7.5);
  // The reverse direction is untouched — overlays are as asymmetric as the
  // base matrices.
  EXPECT_EQ(overlay.Dist(0, 3, 1), space.CatDist(0, 3, 1));
  EXPECT_TRUE(overlay.TouchesColumn(0, 3));
  EXPECT_FALSE(overlay.TouchesColumn(0, 1));
  EXPECT_TRUE(overlay.TouchesRow(0, 1));
  EXPECT_FALSE(overlay.TouchesRow(0, 3));
}

TEST(MatrixOverlayTest, SetOverwritesExistingEntry) {
  SimilaritySpace space = MakeSpace({5}, 3);
  MatrixOverlay overlay(space);
  ASSERT_TRUE(overlay.Set(0, 2, 4, 1.0).ok());
  ASSERT_TRUE(overlay.Set(0, 2, 4, 2.0).ok());
  EXPECT_EQ(overlay.num_entries(), 1u);
  EXPECT_EQ(overlay.Dist(0, 2, 4), 2.0);
  // Both the row view (Dist) and the column view (PatchColumn) must see
  // the overwrite.
  std::vector<double> col(5);
  for (ValueId v = 0; v < 5; ++v) col[v] = space.CatDist(0, v, 4);
  overlay.PatchColumn(0, 4, col.data());
  EXPECT_EQ(col[2], 2.0);
}

TEST(MatrixOverlayTest, ValidationMirrorsSpaceConstruction) {
  SimilaritySpace space = MakeSpace({3}, 4);
  space.AddNumeric(NumericDissimilarity());
  MatrixOverlay overlay(space);
  EXPECT_TRUE(overlay.Set(5, 0, 1, 1.0).IsInvalidArgument())
      << "attr out of range";
  EXPECT_TRUE(overlay.Set(1, 0, 1, 1.0).IsInvalidArgument())
      << "numeric attr";
  EXPECT_TRUE(overlay.Set(0, 3, 1, 1.0).IsInvalidArgument())
      << "from out of domain";
  EXPECT_TRUE(overlay.Set(0, 0, 3, 1.0).IsInvalidArgument())
      << "to out of domain";
  EXPECT_TRUE(overlay.Set(0, 1, 1, 1.0).IsInvalidArgument())
      << "diagonal";
  EXPECT_TRUE(overlay.Set(0, 0, 1, -0.5).IsInvalidArgument())
      << "negative distance";
  EXPECT_TRUE(overlay.empty()) << "rejected entries must not be stored";
}

TEST(MatrixOverlayTest, PatchColumnAndRowApplyOnlyTouchedEntries) {
  SimilaritySpace space = MakeSpace({6}, 5);
  MatrixOverlay overlay(space);
  ASSERT_TRUE(overlay.Set(0, 1, 4, 9.0).ok());
  ASSERT_TRUE(overlay.Set(0, 3, 4, 8.0).ok());
  ASSERT_TRUE(overlay.Set(0, 1, 2, 7.0).ok());

  std::vector<double> col(6);
  for (ValueId v = 0; v < 6; ++v) col[v] = space.CatDist(0, v, 4);
  overlay.PatchColumn(0, 4, col.data());
  for (ValueId v = 0; v < 6; ++v) {
    const double want = v == 1 ? 9.0 : v == 3 ? 8.0 : space.CatDist(0, v, 4);
    EXPECT_EQ(col[v], want) << "column entry " << v;
  }

  std::vector<double> row(6);
  for (ValueId v = 0; v < 6; ++v) row[v] = space.CatDist(0, 1, v);
  overlay.PatchRow(0, 1, row.data());
  for (ValueId v = 0; v < 6; ++v) {
    const double want = v == 4 ? 9.0 : v == 2 ? 7.0 : space.CatDist(0, 1, v);
    EXPECT_EQ(row[v], want) << "row entry " << v;
  }
}

TEST(MatrixOverlayTest, BuildPatchedSpaceMatchesDistEverywhere) {
  SimilaritySpace space = MakeSpace({4, 7, 3}, 6);
  Rng rng(99);
  MatrixOverlay overlay = MakeRandomOverlay(space, rng, 0.15);
  ASSERT_GT(overlay.num_entries(), 0u);
  SimilaritySpace patched = overlay.BuildPatchedSpace();
  ASSERT_EQ(patched.num_attributes(), space.num_attributes());
  for (AttrId a = 0; a < space.num_attributes(); ++a) {
    for (ValueId x = 0; x < space.Cardinality(a); ++x) {
      for (ValueId y = 0; y < space.Cardinality(a); ++y) {
        EXPECT_EQ(patched.CatDist(a, x, y), overlay.Dist(a, x, y))
            << "attr " << a << " (" << x << ", " << y << ")";
      }
    }
  }
  EXPECT_TRUE(patched.matrix(0).Validate().ok());
}

TEST(MatrixOverlayTest, RowSensitivityFollowsTouchedColumns) {
  SimilaritySpace space = MakeSpace({4, 4}, 7);
  MatrixOverlay overlay(space);
  ASSERT_TRUE(overlay.Set(1, 0, 2, 3.0).ok());  // touches column 2 of attr 1

  const std::vector<AttrId> both = {0, 1};
  const std::vector<ValueId> hit = {0, 2};   // attr 1 value 2: touched
  const std::vector<ValueId> miss = {2, 1};  // attr 1 value 1: untouched
  EXPECT_TRUE(overlay.RowSensitive(hit.data(), both));
  EXPECT_FALSE(overlay.RowSensitive(miss.data(), both));

  // Sensitivity respects the attribute selection: dropping attr 1 from the
  // selection makes the same row invariant.
  const std::vector<AttrId> only0 = {0};
  EXPECT_FALSE(overlay.RowSensitive(hit.data(), only0));
}

TEST(MatrixOverlayTest, SerializeParseRoundTrip) {
  SimilaritySpace space = MakeSpace({5, 8}, 8);
  Rng rng(123);
  MatrixOverlay overlay = MakeRandomOverlay(space, rng, 0.2);
  ASSERT_GT(overlay.num_entries(), 1u);

  auto parsed = MatrixOverlay::Parse(space, overlay.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_entries(), overlay.num_entries());
  for (AttrId a = 0; a < 2; ++a) {
    for (ValueId x = 0; x < space.Cardinality(a); ++x) {
      for (ValueId y = 0; y < space.Cardinality(a); ++y) {
        EXPECT_EQ(parsed->Dist(a, x, y), overlay.Dist(a, x, y));
      }
    }
  }
}

TEST(MatrixOverlayTest, ParseRejectsMalformedAndInvalidLines) {
  SimilaritySpace space = MakeSpace({3}, 9);
  EXPECT_TRUE(MatrixOverlay::Parse(space, "0 1\n").status().IsInvalidArgument());
  EXPECT_TRUE(MatrixOverlay::Parse(space, "0 1 2 0.5 extra\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      MatrixOverlay::Parse(space, "0 9 2 0.5\n").status().IsInvalidArgument());
  auto ok = MatrixOverlay::Parse(space, "# comment\n\n  0 1 2 0.5\n");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->num_entries(), 1u);
  EXPECT_EQ(ok->Dist(0, 1, 2), 0.5);
}

TEST(MatrixOverlayTest, MakeRandomOverlayHitsRequestedDensity) {
  SimilaritySpace space = MakeSpace({10, 20}, 10);
  Rng rng(7);
  // 10% of off-diagonal entries: 0.1 * (90 + 380) = 47.
  MatrixOverlay overlay = MakeRandomOverlay(space, rng, 0.10);
  EXPECT_EQ(overlay.num_entries(), 47u);

  // A tiny positive fraction still yields at least one entry.
  Rng rng2(8);
  MatrixOverlay tiny = MakeRandomOverlay(space, rng2, 1e-6);
  EXPECT_GE(tiny.num_entries(), 1u);

  Rng rng3(9);
  EXPECT_TRUE(MakeRandomOverlay(space, rng3, 0.0).empty());
}

}  // namespace
}  // namespace nmrs
