#include "sim/dissimilarity_matrix.h"

#include <gtest/gtest.h>

namespace nmrs {
namespace {

TEST(DissimilarityMatrixTest, StartsAllZero) {
  DissimilarityMatrix m(3);
  for (ValueId a = 0; a < 3; ++a) {
    for (ValueId b = 0; b < 3; ++b) EXPECT_EQ(m.Dist(a, b), 0.0);
  }
}

TEST(DissimilarityMatrixTest, SetAndGet) {
  DissimilarityMatrix m(3);
  m.Set(0, 1, 0.7);
  EXPECT_EQ(m.Dist(0, 1), 0.7);
  EXPECT_EQ(m.Dist(1, 0), 0.0);  // Set is directional
}

TEST(DissimilarityMatrixTest, SetSymmetric) {
  DissimilarityMatrix m(3);
  m.SetSymmetric(0, 2, 0.9);
  EXPECT_EQ(m.Dist(0, 2), 0.9);
  EXPECT_EQ(m.Dist(2, 0), 0.9);
}

TEST(DissimilarityMatrixTest, ValidateRejectsNegative) {
  DissimilarityMatrix m(2);
  m.Set(0, 1, -0.1);
  EXPECT_TRUE(m.Validate().IsInvalidArgument());
}

TEST(DissimilarityMatrixTest, ValidateRejectsNonzeroDiagonal) {
  DissimilarityMatrix m(2);
  m.Set(0, 0, 0.5);
  EXPECT_TRUE(m.Validate().IsInvalidArgument());
  EXPECT_TRUE(m.Validate(/*require_zero_diagonal=*/false).ok());
}

TEST(DissimilarityMatrixTest, IsSymmetric) {
  DissimilarityMatrix m(3);
  m.SetSymmetric(0, 1, 0.5);
  EXPECT_TRUE(m.IsSymmetric());
  m.Set(1, 2, 0.3);
  EXPECT_FALSE(m.IsSymmetric());
}

TEST(DissimilarityMatrixTest, RunningExampleOsMatrixIsNonMetric) {
  // d1(MSW, SL) = 1.0 > d1(MSW, RHL) + d1(RHL, SL) = 0.8 + 0.1.
  DissimilarityMatrix m(3);
  m.SetSymmetric(0, 1, 0.8);
  m.SetSymmetric(0, 2, 1.0);
  m.SetSymmetric(1, 2, 0.1);
  EXPECT_GT(m.TriangleViolationRate(), 0.0);
}

TEST(DissimilarityMatrixTest, MetricMatrixHasNoViolations) {
  // Uniform distance 1 between distinct values (discrete metric).
  DissimilarityMatrix m(5);
  for (ValueId a = 0; a < 5; ++a) {
    for (ValueId b = 0; b < 5; ++b) m.Set(a, b, a == b ? 0.0 : 1.0);
  }
  EXPECT_EQ(m.TriangleViolationRate(), 0.0);
}

TEST(DissimilarityMatrixTest, TriangleViolationRateSmallDomains) {
  EXPECT_EQ(DissimilarityMatrix(1).TriangleViolationRate(), 0.0);
  EXPECT_EQ(DissimilarityMatrix(2).TriangleViolationRate(), 0.0);
}

TEST(MakeRandomMatrixTest, ValidSymmetricZeroDiagonal) {
  Rng rng(42);
  auto m = MakeRandomMatrix(10, rng);
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_TRUE(m.IsSymmetric());
  for (ValueId a = 0; a < 10; ++a) EXPECT_EQ(m.Dist(a, a), 0.0);
}

TEST(MakeRandomMatrixTest, RandomMatricesAreTypicallyNonMetric) {
  // With U[0,1] entries, triangle violations are common — this is the
  // paper's experimental similarity model.
  Rng rng(42);
  auto m = MakeRandomMatrix(20, rng);
  EXPECT_GT(m.TriangleViolationRate(), 0.05);
}

TEST(MakeRandomMatrixTest, AsymmetricOption) {
  Rng rng(42);
  auto m = MakeRandomMatrix(15, rng, {.symmetric = false});
  EXPECT_FALSE(m.IsSymmetric());
  EXPECT_TRUE(m.Validate().ok());
}

TEST(MakeRandomMatrixTest, CustomRange) {
  Rng rng(42);
  auto m = MakeRandomMatrix(8, rng, {.lo = 2.0, .hi = 3.0});
  for (ValueId a = 0; a < 8; ++a) {
    for (ValueId b = 0; b < 8; ++b) {
      if (a == b) continue;
      EXPECT_GE(m.Dist(a, b), 2.0);
      EXPECT_LT(m.Dist(a, b), 3.0);
    }
  }
}

TEST(MakeRandomMatrixTest, DeterministicForSeed) {
  Rng r1(5), r2(5);
  auto a = MakeRandomMatrix(6, r1);
  auto b = MakeRandomMatrix(6, r2);
  for (ValueId x = 0; x < 6; ++x) {
    for (ValueId y = 0; y < 6; ++y) EXPECT_EQ(a.Dist(x, y), b.Dist(x, y));
  }
}

TEST(MakeRandomMatrixTest, SampledViolationRateForLargeDomains) {
  Rng rng(42);
  auto m = MakeRandomMatrix(200, rng);  // 200³ triples -> sampled path
  const double rate = m.TriangleViolationRate(/*max_samples=*/5000);
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 1.0);
}

TEST(DissimilarityMatrixTest, AppendValueMatchesFromScratchBuild) {
  // Build a 5x5 matrix two ways: all Set() calls, vs a 4x4 matrix grown by
  // AppendValue. Every accessor must agree.
  Rng rng(11);
  std::vector<std::vector<double>> d(5, std::vector<double>(5));
  for (ValueId a = 0; a < 5; ++a) {
    for (ValueId b = 0; b < 5; ++b) d[a][b] = a == b ? 0.0 : rng.NextDouble();
  }
  DissimilarityMatrix full(5);
  for (ValueId a = 0; a < 5; ++a) {
    for (ValueId b = 0; b < 5; ++b) full.Set(a, b, d[a][b]);
  }
  DissimilarityMatrix grown(4);
  for (ValueId a = 0; a < 4; ++a) {
    for (ValueId b = 0; b < 4; ++b) grown.Set(a, b, d[a][b]);
  }
  std::vector<double> to_new, from_new;
  for (ValueId a = 0; a < 4; ++a) {
    to_new.push_back(d[a][4]);
    from_new.push_back(d[4][a]);
  }
  EXPECT_EQ(grown.AppendValue(to_new, from_new, 0.0), 4u);
  ASSERT_EQ(grown.cardinality(), 5u);
  for (ValueId a = 0; a < 5; ++a) {
    for (ValueId b = 0; b < 5; ++b) {
      EXPECT_EQ(grown.Dist(a, b), full.Dist(a, b)) << a << "," << b;
      EXPECT_EQ(grown.RowFrom(a)[b], full.RowFrom(a)[b]) << a << "," << b;
      EXPECT_EQ(grown.ColumnTo(b)[a], full.ColumnTo(b)[a]) << a << "," << b;
    }
  }
  EXPECT_TRUE(grown.Validate().ok());
}

TEST(DissimilarityMatrixTest, AppendValueSupportsAsymmetryAndSelfDistance) {
  DissimilarityMatrix m(2);
  m.Set(0, 1, 0.3);
  m.Set(1, 0, 0.7);  // non-metric: asymmetric
  m.AppendValue({0.1, 0.2}, {0.4, 0.5}, 0.05);
  EXPECT_EQ(m.Dist(0, 2), 0.1);
  EXPECT_EQ(m.Dist(1, 2), 0.2);
  EXPECT_EQ(m.Dist(2, 0), 0.4);
  EXPECT_EQ(m.Dist(2, 1), 0.5);
  EXPECT_EQ(m.Dist(2, 2), 0.05);
  EXPECT_EQ(m.Dist(0, 1), 0.3);
  EXPECT_EQ(m.Dist(1, 0), 0.7);
}

}  // namespace
}  // namespace nmrs
