#include <string>
#include <vector>

#include "bench_util.h"
#include "gtest/gtest.h"

namespace nmrs {
namespace bench {
namespace {

// Pins the JSON schema of the shared emitters. Gate scripts
// (tools/check_*_gate.py) key off these field names, so a rename or a
// dropped counter must fail here, not in CI archaeology. The companion
// static_asserts in bench_util.cc pin the *struct* sizes, so a counter
// added to IoStats/MessageStats cannot be silently absent from the schema.

TEST(BenchSchemaTest, EmitIoFieldsCoversEveryCounter) {
  IoStats io;
  io.seq_reads = 1;
  io.rand_reads = 2;
  io.seq_writes = 3;
  io.rand_writes = 4;
  io.cache_hits = 5;
  io.cache_misses = 6;
  io.cache_evictions = 7;
  io.transient_retries = 8;
  io.checksum_failures = 9;
  io.quarantined_pages = 10;
  io.failovers = 11;
  io.replica_reads[0] = 12;
  io.replica_reads[1] = 13;

  JsonWriter json("schema_pin");
  json.BeginRun();
  EmitIoFields(&json, io);

  const std::vector<std::string> want = {
      "seq_reads",         "rand_reads",        "seq_writes",
      "rand_writes",       "total_seq_io",      "total_rand_io",
      "cache_hits",        "cache_misses",      "cache_evictions",
      "cache_hit_ratio",   "transient_retries", "checksum_failures",
      "quarantined_pages", "failovers",         "replica_reads_total",
  };
  EXPECT_EQ(json.RunKeys(0), want);
}

TEST(BenchSchemaTest, EmitOverlayFieldsCoversEveryCounter) {
  JsonWriter json("schema_pin");
  json.BeginRun();
  EmitOverlayFields(&json, /*sensitive_rows=*/10, /*invariant_rows=*/90,
                    /*recheck_scans=*/4, /*recheck_checks=*/20,
                    /*recheck_pair_tests=*/60);

  const std::vector<std::string> want = {
      "sensitive_rows", "invariant_rows", "sensitive_fraction",
      "recheck_scans",  "recheck_checks", "recheck_pair_tests",
  };
  EXPECT_EQ(json.RunKeys(0), want);
}

TEST(BenchSchemaTest, EmitMessageFieldsCoversEveryCounter) {
  MessageStats msg;
  msg.messages = 3;
  msg.bytes = 4096;
  msg.rounds = 3;

  JsonWriter json("schema_pin");
  json.BeginRun();
  EmitMessageFields(&json, msg);

  const std::vector<std::string> want = {"net_messages", "net_bytes",
                                         "net_rounds", "net_millis"};
  EXPECT_EQ(json.RunKeys(0), want);
}

TEST(BenchSchemaTest, FieldsAccumulatePerRun) {
  JsonWriter json("schema_pin");
  json.BeginRun();
  EmitIoFields(&json, IoStats{});
  EmitMessageFields(&json, MessageStats{});
  EmitOverlayFields(&json, 0, 0, 0, 0, 0);
  json.BeginRun();
  EmitMessageFields(&json, MessageStats{});
  ASSERT_EQ(json.num_runs(), 2u);
  EXPECT_EQ(json.RunKeys(0).size(), 25u);
  EXPECT_EQ(json.RunKeys(1).size(), 4u);
}

}  // namespace
}  // namespace bench
}  // namespace nmrs
