#include "ops/topk.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;
using testing::RunningExample;

TEST(TopKScanTest, RunningExampleNearest) {
  RunningExample ex;
  WeightedDistance w = WeightedDistance::Uniform(3);
  auto top = TopKScan(ex.dataset, ex.space, ex.query, w, 2);
  ASSERT_EQ(top.size(), 2u);
  // O6 == Q at distance 0; next closest is O1/O4 at 0.5 (tie -> O1).
  EXPECT_EQ(top[0].row, 5u);
  EXPECT_DOUBLE_EQ(top[0].distance, 0.0);
  EXPECT_EQ(top[1].row, 0u);
  EXPECT_DOUBLE_EQ(top[1].distance, 0.5);
}

TEST(TopKScanTest, KLargerThanDataset) {
  RunningExample ex;
  auto top = TopKScan(ex.dataset, ex.space, ex.query,
                      WeightedDistance::Uniform(3), 100);
  EXPECT_EQ(top.size(), ex.dataset.num_rows());
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].distance, top[i].distance);
  }
}

class TopKAgreement : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKAgreement, ALTreeMatchesScan) {
  const size_t k = GetParam();
  RandomInstance inst(20 + k, 800, {7, 9, 5});
  Rng rng(21);
  for (int trial = 0; trial < 4; ++trial) {
    Object q = SampleUniformQuery(inst.data, rng);
    WeightedDistance w = WeightedDistance::Random(3, rng);
    auto scan = TopKScan(inst.data, inst.space, q, w, k);
    uint64_t checks = 0;
    auto tree = TopKALTree(inst.data, inst.space, q, w, k, &checks);
    ASSERT_EQ(tree.size(), scan.size());
    for (size_t i = 0; i < scan.size(); ++i) {
      EXPECT_EQ(tree[i].row, scan[i].row) << "k=" << k << " i=" << i;
      EXPECT_DOUBLE_EQ(tree[i].distance, scan[i].distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKAgreement,
                         ::testing::Values(1, 3, 10, 50, 200));

TEST(TopKALTreeTest, GroupLevelBoundsSaveChecks) {
  // The point of the AL-Tree for top-k (EDBT'08): far fewer distance
  // evaluations than the n·m of a scan, on concentrated data.
  RandomInstance inst(33, 5000, {20, 20, 20, 20});
  Rng rng(34);
  Object q = SampleUniformQuery(inst.data, rng);
  WeightedDistance w = WeightedDistance::Uniform(4);
  uint64_t checks = 0;
  auto top = TopKALTree(inst.data, inst.space, q, w, 10, &checks);
  ASSERT_EQ(top.size(), 10u);
  EXPECT_LT(checks, inst.data.num_rows() * 4);
}

TEST(TopKALTreeTest, DuplicatesFillK) {
  Dataset data(Schema::Categorical({2, 2}));
  for (int i = 0; i < 10; ++i) data.AppendCategoricalRow({0, 0});
  Rng rng(35);
  SimilaritySpace space = MakeRandomSpace({2, 2}, rng);
  Object q({1, 1});
  auto top = TopKALTree(data, space, q, WeightedDistance::Uniform(2), 7);
  ASSERT_EQ(top.size(), 7u);
  for (const auto& e : top) {
    EXPECT_DOUBLE_EQ(e.distance, top[0].distance);
  }
}

TEST(TopKALTreeTest, MixedNumericSchema) {
  Rng rng(36);
  Dataset data = GenerateMixed(600, {5, 5}, 2, 8, rng);
  SimilaritySpace space;
  space.AddCategorical(MakeRandomMatrix(5, rng));
  space.AddCategorical(MakeRandomMatrix(5, rng));
  space.AddNumeric(NumericDissimilarity(0.01));
  space.AddNumeric(NumericDissimilarity(0.02));
  for (int trial = 0; trial < 3; ++trial) {
    Object q = SampleUniformQuery(data, rng);
    WeightedDistance w = WeightedDistance::Random(4, rng);
    auto scan = TopKScan(data, space, q, w, 15);
    auto tree = TopKALTree(data, space, q, w, 15);
    ASSERT_EQ(tree.size(), scan.size());
    for (size_t i = 0; i < scan.size(); ++i) {
      EXPECT_EQ(tree[i].row, scan[i].row);
      EXPECT_NEAR(tree[i].distance, scan[i].distance, 1e-9);
    }
  }
}

TEST(TopKALTreeTest, EdgeCases) {
  RandomInstance inst(40, 50, {4, 4});
  Rng rng(41);
  Object q = SampleUniformQuery(inst.data, rng);
  WeightedDistance w = WeightedDistance::Uniform(2);
  EXPECT_TRUE(TopKALTree(inst.data, inst.space, q, w, 0).empty());

  Dataset empty(Schema::Categorical({4, 4}));
  EXPECT_TRUE(TopKALTree(empty, inst.space, q, w, 5).empty());
}

}  // namespace
}  // namespace nmrs
