#include "ops/weighted_distance.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RunningExample;

TEST(WeightedDistanceTest, UniformWeightsSumDistances) {
  RunningExample ex;
  WeightedDistance w = WeightedDistance::Uniform(3);
  // O2 = [RHL, AMD, Informix] from reference Q = [MSW, Intel, DB2]:
  // 0.8 + 0.5 + 0.5.
  const double d = w.RowDistance(ex.dataset, ex.space, 1, ex.query);
  EXPECT_DOUBLE_EQ(d, 1.8);
}

TEST(WeightedDistanceTest, WeightsScaleAttributes) {
  RunningExample ex;
  WeightedDistance w({2.0, 1.0, 4.0});
  const double d = w.RowDistance(ex.dataset, ex.space, 1, ex.query);
  EXPECT_DOUBLE_EQ(d, 2.0 * 0.8 + 1.0 * 0.5 + 4.0 * 0.5);
}

TEST(WeightedDistanceTest, ZeroForIdenticalObjects) {
  RunningExample ex;
  WeightedDistance w = WeightedDistance::Uniform(3);
  // O6 == Q.
  EXPECT_DOUBLE_EQ(w.RowDistance(ex.dataset, ex.space, 5, ex.query), 0.0);
}

TEST(WeightedDistanceTest, RandomWeightsArePositive) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    WeightedDistance w = WeightedDistance::Random(5, rng);
    for (AttrId a = 0; a < 5; ++a) {
      EXPECT_GT(w.weight(a), 0.0);
      EXPECT_LE(w.weight(a), 1.0);
    }
  }
}

TEST(WeightedDistanceTest, ObjectAndRowAgree) {
  RunningExample ex;
  WeightedDistance w({1.5, 0.5, 2.0});
  for (RowId r = 0; r < ex.dataset.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(
        w.RowDistance(ex.dataset, ex.space, r, ex.query),
        w.Distance(ex.dataset.schema(), ex.space, ex.dataset.GetObject(r),
                   ex.query));
  }
}

TEST(WeightedDistanceTest, NumericAttributesContribute) {
  Rng rng(2);
  Dataset data = GenerateMixed(5, {3}, 1, 4, rng);
  SimilaritySpace space;
  space.AddCategorical(MakeRandomMatrix(3, rng));
  space.AddNumeric(NumericDissimilarity(2.0));
  WeightedDistance w({1.0, 3.0});
  Object q = data.GetObject(0);
  const double expected =
      1.0 * space.CatDist(0, data.Value(1, 0), q.values[0]) +
      3.0 * 2.0 * std::fabs(data.Numeric(1, 1) - q.numerics[1]);
  EXPECT_DOUBLE_EQ(w.RowDistance(data, space, 1, q), expected);
}

}  // namespace
}  // namespace nmrs
