#include "ops/rnn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/skyline.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;
using testing::RunningExample;

bool IsSubset(const std::vector<RowId>& sub, const std::vector<RowId>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

TEST(RnnScanTest, RunningExample) {
  RunningExample ex;
  WeightedDistance w = WeightedDistance::Uniform(3);
  auto rnn = RnnScan(ex.dataset, ex.space, ex.query, w);
  // Q == O6, so dist(Q, O6) = 0 and O6 is in the RNN set; any RNN member
  // must be in RS(Q) = {O3, O6}.
  EXPECT_NE(std::find(rnn.begin(), rnn.end(), 5u), rnn.end());
  auto rs = ReverseSkylineOracle(ex.dataset, ex.space, ex.query);
  EXPECT_TRUE(IsSubset(rnn, rs));
}

// The central relationship (§1): for every positive weighting, the RNN set
// is contained in the reverse skyline.
class RnnSubsetOfRs : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RnnSubsetOfRs, HoldsForRandomWeightings) {
  const uint64_t seed = GetParam();
  RandomInstance inst(seed, 150, {5, 6, 4});
  Rng rng(seed + 1000);
  Object q = SampleUniformQuery(inst.data, rng);
  auto rs = ReverseSkylineOracle(inst.data, inst.space, q);
  for (int i = 0; i < 8; ++i) {
    WeightedDistance w = WeightedDistance::Random(3, rng);
    auto rnn = RnnScan(inst.data, inst.space, q, w);
    EXPECT_TRUE(IsSubset(rnn, rs))
        << "seed " << seed << " weighting " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RnnSubsetOfRs,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(RnnUnionCoverageTest, CoverageGrowsAndStaysWithinRs) {
  RandomInstance inst(77, 120, {4, 4, 4});
  Rng rng(78);
  Object q = SampleUniformQuery(inst.data, rng);
  auto rs = ReverseSkylineOracle(inst.data, inst.space, q);

  auto few = RnnUnionCoverage(inst.data, inst.space, q, 2, 99);
  auto many = RnnUnionCoverage(inst.data, inst.space, q, 25, 99);
  EXPECT_TRUE(IsSubset(few, rs));
  EXPECT_TRUE(IsSubset(many, rs));
  EXPECT_TRUE(IsSubset(few, many));  // same seed prefix -> monotone
  EXPECT_GE(many.size(), few.size());
  EXPECT_GT(many.size(), 0u);
}

TEST(RnnScanTest, QueryAtRowIsItsOwnRnn) {
  RandomInstance inst(81, 80, {6, 6});
  Rng rng(82);
  const RowId pick = rng.Uniform(inst.data.num_rows());
  Object q = inst.data.GetObject(pick);
  WeightedDistance w = WeightedDistance::Uniform(2);
  auto rnn = RnnScan(inst.data, inst.space, q, w);
  // dist(Q, pick) = 0, which nothing can beat strictly.
  EXPECT_NE(std::find(rnn.begin(), rnn.end(), pick), rnn.end());
}

TEST(RnnScanTest, EmptyDataset) {
  Dataset d(Schema::Categorical({3}));
  Rng rng(1);
  SimilaritySpace space = MakeRandomSpace({3}, rng);
  EXPECT_TRUE(
      RnnScan(d, space, Object({0}), WeightedDistance::Uniform(1)).empty());
}

}  // namespace
}  // namespace nmrs
