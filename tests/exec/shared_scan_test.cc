// Cross-query shared-scan determinism (QueryEngineOptions::shared_scan,
// docs/KERNELS.md): per-query rows and check accounting must be
// bit-identical to per-query execution across worker counts, group sizes,
// caching, and kernel/adaptive settings; the scan's IO must be accounted
// once per group; and ineligible batches (fault injection, replica
// failover, non-BRS/SRS plans) must fall back to per-query execution.
#include <string>
#include <vector>

#include "data/generators.h"
#include "exec/query_engine.h"
#include "gtest/gtest.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

class SharedScanTest : public ::testing::Test {
 protected:
  SharedScanTest() : instance_(20260808, 2000, {6, 9, 13}) {
    Rng rng(314);
    for (int i = 0; i < 12; ++i) {
      queries_.push_back(SampleUniformQuery(instance_.data, rng));
    }
  }

  RandomInstance instance_;
  std::vector<Object> queries_;
};

// Kernel settings the sweep exercises: scalar phase 1, kernels with
// immediate promotion (every check through the block path + shared cache),
// and kernels with the adaptive default.
struct KernelVariant {
  const char* name;
  bool use_kernels;
  uint32_t promote_rows;
};
constexpr KernelVariant kKernelVariants[] = {
    {"scalar", false, 0},
    {"kernels-promote0", true, 0},
    {"kernels-default", true, 16},
};

TEST_F(SharedScanTest, BitIdenticalToPerQueryExecution) {
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kSRS}) {
    SimulatedDisk disk;
    auto prepared = PrepareDataset(&disk, instance_.data, algo);
    ASSERT_TRUE(prepared.ok()) << prepared.status();
    for (const KernelVariant& kv : kKernelVariants) {
      QueryEngineOptions ref_opts;
      ref_opts.num_workers = 1;
      ref_opts.rs.memory = MemoryBudget{3};
      ref_opts.rs.use_kernels = kv.use_kernels;
      ref_opts.rs.kernel_promote_rows = kv.promote_rows;
      QueryEngine ref_engine(*prepared, instance_.space, algo, ref_opts);
      auto reference = ref_engine.RunBatch(queries_);
      ASSERT_TRUE(reference.ok()) << reference.status();
      ASSERT_TRUE(reference->ok());
      EXPECT_EQ(reference->shared_scan_groups, 0u);

      struct Config {
        size_t workers;
        size_t group;
        bool cache;
      };
      for (const Config& cfg : {Config{1, 1, false}, Config{1, 4, false},
                                Config{1, 16, true}, Config{3, 1, true},
                                Config{3, 4, false}, Config{3, 16, true}}) {
        QueryEngineOptions opts = ref_opts;
        opts.num_workers = cfg.workers;
        opts.shared_scan = true;
        opts.shared_scan_group = cfg.group;
        opts.cache_pages = cfg.cache ? prepared->stored.num_pages() : 0;
        QueryEngine engine(*prepared, instance_.space, algo, opts);
        auto batch = engine.RunBatch(queries_);
        ASSERT_TRUE(batch.ok()) << batch.status();
        ASSERT_TRUE(batch->ok()) << batch->first_error();
        const std::string label =
            std::string(AlgorithmName(algo)) + "/" + kv.name + " workers=" +
            std::to_string(cfg.workers) + " group=" +
            std::to_string(cfg.group) + (cfg.cache ? " cache" : "");
        const size_t expected_groups =
            (queries_.size() + cfg.group - 1) / cfg.group;
        EXPECT_EQ(batch->shared_scan_groups, expected_groups) << label;
        for (size_t i = 0; i < queries_.size(); ++i) {
          const QueryStats& ref = reference->results[i].stats;
          const QueryStats& got = batch->results[i].stats;
          EXPECT_EQ(batch->results[i].rows, reference->results[i].rows)
              << label << " query " << i;
          EXPECT_EQ(got.checks, ref.checks) << label << " query " << i;
          EXPECT_EQ(got.pair_tests, ref.pair_tests)
              << label << " query " << i;
          EXPECT_EQ(got.phase1_checks, ref.phase1_checks)
              << label << " query " << i;
          EXPECT_EQ(got.phase2_checks, ref.phase2_checks)
              << label << " query " << i;
          EXPECT_EQ(got.phase1_survivors, ref.phase1_survivors)
              << label << " query " << i;
          EXPECT_EQ(got.phase1_batches, ref.phase1_batches)
              << label << " query " << i;
          EXPECT_EQ(got.result_size, ref.result_size)
              << label << " query " << i;
        }
        // The shared pass's IO is reported once; together with per-query
        // IO it is the whole batch.
        IoStats sum = batch->shared_io;
        for (const auto& r : batch->results) sum += r.stats.io;
        EXPECT_EQ(sum, batch->total_io) << label;
        // Replacing Q phase-1 scans with one per group can only shrink
        // the disk traffic (strictly, once a group has > 1 query and no
        // cache blurs the comparison).
        EXPECT_LE(batch->total_io.TotalReads(),
                  reference->total_io.TotalReads())
            << label;
        if (cfg.group > 1 && !cfg.cache) {
          EXPECT_LT(batch->total_io.TotalReads(),
                    reference->total_io.TotalReads())
              << label;
        }
      }
    }
  }
}

TEST_F(SharedScanTest, SharedBatchCountersMatchPerQueryPhase1) {
  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, instance_.data, Algorithm::kSRS);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  QueryEngineOptions opts;
  opts.num_workers = 2;
  opts.rs.memory = MemoryBudget{2};
  opts.shared_scan = true;
  opts.shared_scan_group = 8;
  QueryEngine engine(*prepared, instance_.space, Algorithm::kSRS, opts);
  auto batch = engine.RunBatch(queries_);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_TRUE(batch->ok());
  const size_t expected_groups = (queries_.size() + 7) / 8;
  EXPECT_EQ(batch->shared_scan_groups, expected_groups);
  // Every group's shared pass loads each query's phase-1 batches exactly
  // once, so the batch counter is groups x per-query phase1_batches.
  ASSERT_FALSE(batch->results.empty());
  const uint64_t per_query = batch->results[0].stats.phase1_batches;
  EXPECT_GT(per_query, 0u);
  EXPECT_EQ(batch->shared_scan_batches, expected_groups * per_query);
  EXPECT_GT(batch->shared_io.TotalReads(), 0u);
}

TEST_F(SharedScanTest, FallsBackUnderFaultInjectionAndForeignAlgorithms) {
  // Fault injection: shared frames would leak one query's faulted fetch
  // into another's reads, so the engine must run per query (which also
  // keeps the fault streams per query index).
  {
    SimulatedDisk disk;
    auto prepared = PrepareDataset(&disk, instance_.data, Algorithm::kBRS);
    ASSERT_TRUE(prepared.ok()) << prepared.status();
    QueryEngineOptions clean;
    clean.num_workers = 1;
    clean.rs.memory = MemoryBudget{2};
    QueryEngine clean_engine(*prepared, instance_.space, Algorithm::kBRS,
                             clean);
    auto reference = clean_engine.RunBatch(queries_);
    ASSERT_TRUE(reference.ok() && reference->ok());

    QueryEngineOptions opts = clean;
    opts.num_workers = 2;
    opts.shared_scan = true;
    opts.faults.seed = 5;
    opts.faults.transient_read_p = 0.05;
    opts.rs.resilience.retry.max_attempts = 6;
    QueryEngine engine(*prepared, instance_.space, Algorithm::kBRS, opts);
    auto batch = engine.RunBatch(queries_);
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_TRUE(batch->ok()) << batch->first_error();
    EXPECT_EQ(batch->shared_scan_groups, 0u);
    EXPECT_EQ(batch->shared_io.Total(), 0u);
    for (size_t i = 0; i < queries_.size(); ++i) {
      EXPECT_EQ(batch->results[i].rows, reference->results[i].rows);
    }
  }
  // Plans whose phase 1 the shared pass does not implement fall back too.
  {
    SimulatedDisk disk;
    auto prepared = PrepareDataset(&disk, instance_.data, Algorithm::kTRS);
    ASSERT_TRUE(prepared.ok()) << prepared.status();
    QueryEngineOptions opts;
    opts.num_workers = 2;
    opts.rs.memory = MemoryBudget{2};
    opts.shared_scan = true;
    QueryEngine engine(*prepared, instance_.space, Algorithm::kTRS, opts);
    auto batch = engine.RunBatch(queries_);
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_TRUE(batch->ok());
    EXPECT_EQ(batch->shared_scan_groups, 0u);
  }
}

TEST_F(SharedScanTest, RejectsPoliciesTheAccountingCannotRepresent) {
  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, instance_.data, Algorithm::kBRS);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  // replicas beyond IoStats::kMaxReplicas used to be silently clamped —
  // replica 9+ would neither serve reads nor appear in replica_reads.
  for (const int replicas : {0, -2, 9, 100}) {
    QueryEngineOptions opts;
    opts.rs.memory = MemoryBudget{2};
    opts.num_workers = 1;
    opts.rs.resilience.replicas = replicas;
    QueryEngine engine(*prepared, instance_.space, Algorithm::kBRS, opts);
    auto batch = engine.RunBatch(queries_);
    ASSERT_FALSE(batch.ok()) << "replicas=" << replicas;
    EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument)
        << batch.status();
  }
  {
    QueryEngineOptions opts;
    opts.rs.memory = MemoryBudget{2};
    opts.num_workers = 1;
    opts.rs.resilience.retry.max_attempts = 0;
    QueryEngine engine(*prepared, instance_.space, Algorithm::kBRS, opts);
    auto batch = engine.RunBatch(queries_);
    ASSERT_FALSE(batch.ok());
    EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  }
  // The full allowed range still runs.
  {
    QueryEngineOptions opts;
    opts.rs.memory = MemoryBudget{2};
    opts.num_workers = 1;
    opts.rs.resilience.replicas = static_cast<int>(IoStats::kMaxReplicas);
    QueryEngine engine(*prepared, instance_.space, Algorithm::kBRS, opts);
    auto batch = engine.RunBatch({queries_[0]});
    ASSERT_TRUE(batch.ok()) << batch.status();
    EXPECT_TRUE(batch->ok());
  }
}

}  // namespace
}  // namespace nmrs
