#include "exec/query_engine.h"

#include <atomic>
#include <numeric>
#include <vector>

#include "common/sync.h"
#include "data/generators.h"
#include "exec/thread_pool.h"
#include "gtest/gtest.h"
#include "storage/disk_view.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  WaitGroup wg;
  constexpr int kTasks = 500;
  wg.Add(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, WorkerIndexIsStableAndScoped) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.CurrentWorkerIndex(), -1);  // not a pool thread
  std::atomic<bool> ok{true};
  WaitGroup wg;
  constexpr int kTasks = 64;
  wg.Add(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      const int w = pool.CurrentWorkerIndex();
      if (w < 0 || w >= 3) ok.store(false);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelChunksTest, CoversEveryChunkExactlyOnce) {
  constexpr size_t kChunks = 57;
  // Without an executor (temporary threads) and with a pool.
  {
    std::vector<std::atomic<int>> hits(kChunks);
    ParallelChunks(nullptr, 4, kChunks,
                   [&](size_t c) { hits[c].fetch_add(1); });
    for (size_t c = 0; c < kChunks; ++c) EXPECT_EQ(hits[c].load(), 1);
  }
  {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(kChunks);
    ParallelChunks(&pool, 4, kChunks,
                   [&](size_t c) { hits[c].fetch_add(1); });
    for (size_t c = 0; c < kChunks; ++c) EXPECT_EQ(hits[c].load(), 1);
  }
}

TEST(DiskViewTest, ReadsBaseFilesChargingViewStats) {
  SimulatedDisk base;
  const FileId f = base.CreateFile("data");
  Page page(base.page_size());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(base.AppendPage(f, page).ok());
  base.ResetStats();

  DiskView view(&base);
  Page out(0);
  ASSERT_TRUE(view.ReadPage(f, 0, &out).ok());
  ASSERT_TRUE(view.ReadPage(f, 1, &out).ok());
  EXPECT_EQ(out.size(), base.page_size());
  // First read random, second sequential — charged to the view only.
  EXPECT_EQ(view.stats().rand_reads, 1u);
  EXPECT_EQ(view.stats().seq_reads, 1u);
  EXPECT_EQ(base.stats().Total(), 0u);
}

TEST(DiskViewTest, RejectsWritesToBaseFiles) {
  SimulatedDisk base;
  const FileId f = base.CreateFile("data");
  Page page(base.page_size());
  ASSERT_TRUE(base.AppendPage(f, page).ok());

  DiskView view(&base);
  EXPECT_EQ(view.WritePage(f, 0, page).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(view.DeleteFile(f).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(view.TruncateFile(f).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(view.AppendPage(f, page).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DiskViewTest, LocalScratchFilesAreWritableAndDoNotCollide) {
  SimulatedDisk base;
  const FileId f = base.CreateFile("data");
  Page page(base.page_size());
  ASSERT_TRUE(base.AppendPage(f, page).ok());

  DiskView view(&base);
  const FileId scratch = view.CreateFile("scratch");
  EXPECT_GE(scratch, base.next_file_id());
  EXPECT_FALSE(base.FileExists(scratch));
  ASSERT_TRUE(view.AppendPage(scratch, page).ok());
  EXPECT_EQ(view.NumPages(scratch), 1u);
  EXPECT_EQ(view.NumPages(f), 1u);
  EXPECT_EQ(view.TotalPages(), 2u);
  Page out(0);
  ASSERT_TRUE(view.ReadPage(scratch, 0, &out).ok());
  ASSERT_TRUE(view.DeleteFile(scratch).ok());
  EXPECT_FALSE(view.FileExists(scratch));
  EXPECT_TRUE(view.FileExists(f));
}

TEST(DiskViewTest, ViewsKeepIndependentArmPositions) {
  SimulatedDisk base;
  const FileId f = base.CreateFile("data");
  Page page(base.page_size());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(base.AppendPage(f, page).ok());

  DiskView a(&base);
  DiskView b(&base);
  Page out(0);
  ASSERT_TRUE(a.ReadPage(f, 0, &out).ok());
  ASSERT_TRUE(a.ReadPage(f, 1, &out).ok());
  ASSERT_TRUE(b.ReadPage(f, 2, &out).ok());  // fresh arm: random
  ASSERT_TRUE(a.ReadPage(f, 2, &out).ok());  // continues a's arm: seq
  EXPECT_EQ(a.stats().seq_reads, 2u);
  EXPECT_EQ(a.stats().rand_reads, 1u);
  EXPECT_EQ(b.stats().seq_reads, 0u);
  EXPECT_EQ(b.stats().rand_reads, 1u);
}

// ---------------------------------------------------------------------------
// Determinism regression: the engine must return identical result sets and
// identical aggregate IO totals for 1, 2, and 8 workers (ISSUE 1), and both
// must equal a plain sequential run of every query.
// ---------------------------------------------------------------------------

struct Workload {
  Workload(uint64_t seed, uint64_t rows)
      : instance(seed, rows, {6, 7, 8}) {
    Rng rng(seed * 7919 + 1);
    for (int i = 0; i < 24; ++i) {
      queries.push_back(SampleUniformQuery(instance.data, rng));
    }
  }

  RandomInstance instance;
  std::vector<Object> queries;
};

RSOptions SmallMemory() {
  RSOptions rs;
  rs.memory = MemoryBudget{2};  // force multiple phase-1/phase-2 batches
  return rs;
}

void ExpectBatchesIdentical(const BatchResult& a, const BatchResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].rows, b.results[i].rows) << "query " << i;
    EXPECT_EQ(a.results[i].stats.io, b.results[i].stats.io) << "query " << i;
    EXPECT_EQ(a.results[i].stats.checks, b.results[i].stats.checks)
        << "query " << i;
  }
  EXPECT_EQ(a.total_io, b.total_io);
}

TEST(QueryEngineTest, WorkerCountDoesNotChangeResultsOrIo) {
  Workload wl(97, 5000);
  for (Algorithm algo :
       {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    SimulatedDisk disk;
    auto prepared = PrepareDataset(&disk, wl.instance.data, algo);
    ASSERT_TRUE(prepared.ok()) << prepared.status();

    // Sequential ground truth, charged to a dedicated view so the base
    // disk stays frozen.
    std::vector<ReverseSkylineResult> expected;
    IoStats expected_io;
    {
      DiskView view(&disk);
      PreparedDataset local{StoredDataset(&view, prepared->stored.file(),
                                          prepared->stored.schema(),
                                          prepared->stored.num_rows()),
                            prepared->attr_order, 0};
      for (const Object& q : wl.queries) {
        auto r = RunReverseSkyline(local, wl.instance.space, q, algo,
                                   SmallMemory());
        ASSERT_TRUE(r.ok()) << r.status();
        expected_io += r->stats.io;
        expected.push_back(std::move(*r));
      }
    }

    BatchResult first;
    bool have_first = false;
    for (size_t workers : {1u, 2u, 8u}) {
      QueryEngineOptions opts;
      opts.num_workers = workers;
      opts.rs = SmallMemory();
      QueryEngine engine(*prepared, wl.instance.space, algo, opts);
      auto batch = engine.RunBatch(wl.queries);
      ASSERT_TRUE(batch.ok()) << batch.status();
      ASSERT_EQ(batch->results.size(), wl.queries.size());

      EXPECT_EQ(batch->total_io, expected_io)
          << AlgorithmName(algo) << " with " << workers << " workers";
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(batch->results[i].rows, expected[i].rows)
            << AlgorithmName(algo) << " query " << i << " with " << workers
            << " workers";
        EXPECT_EQ(batch->results[i].stats.io, expected[i].stats.io);
        EXPECT_EQ(batch->results[i].stats.checks, expected[i].stats.checks);
      }

      if (!have_first) {
        first = std::move(*batch);
        have_first = true;
      } else {
        ExpectBatchesIdentical(first, *batch);
      }
    }
  }
}

TEST(QueryEngineTest, AggregateIoEqualsSumOfPerQueryIo) {
  Workload wl(31, 3000);
  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, wl.instance.data, Algorithm::kSRS);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  QueryEngineOptions opts;
  opts.num_workers = 4;
  opts.rs = SmallMemory();
  QueryEngine engine(*prepared, wl.instance.space, Algorithm::kSRS, opts);
  auto batch = engine.RunBatch(wl.queries);
  ASSERT_TRUE(batch.ok()) << batch.status();

  IoStats sum;
  double busy = 0;
  for (const auto& r : batch->results) sum += r.stats.io;
  for (double w : batch->worker_modeled_millis) busy += w;
  EXPECT_EQ(batch->total_io, sum);
  EXPECT_GT(batch->ModeledMakespanMillis(), 0.0);
  EXPECT_LE(batch->ModeledMakespanMillis(), busy + 1e-9);
  EXPECT_GT(batch->ModeledQps(), 0.0);
}

// Intra-query phase-1 chunking must leave results, check totals, and IO
// bit-identical to the sequential execution.
TEST(QueryEngineTest, IntraQueryParallelismIsDeterministic) {
  Workload wl(7, 5000);
  for (Algorithm algo :
       {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    SimulatedDisk seq_disk;
    auto prepared = PrepareDataset(&seq_disk, wl.instance.data, algo);
    ASSERT_TRUE(prepared.ok()) << prepared.status();

    for (const Object& q : wl.queries) {
      DiskView seq_view(&seq_disk);
      PreparedDataset seq_local{
          StoredDataset(&seq_view, prepared->stored.file(),
                        prepared->stored.schema(),
                        prepared->stored.num_rows()),
          prepared->attr_order, 0};
      auto seq = RunReverseSkyline(seq_local, wl.instance.space, q, algo,
                                   SmallMemory());
      ASSERT_TRUE(seq.ok()) << seq.status();

      DiskView par_view(&seq_disk);
      PreparedDataset par_local{
          StoredDataset(&par_view, prepared->stored.file(),
                        prepared->stored.schema(),
                        prepared->stored.num_rows()),
          prepared->attr_order, 0};
      RSOptions par_opts = SmallMemory();
      par_opts.num_threads = 4;  // no executor: temporary threads
      auto par = RunReverseSkyline(par_local, wl.instance.space, q, algo,
                                   par_opts);
      ASSERT_TRUE(par.ok()) << par.status();

      EXPECT_EQ(par->rows, seq->rows) << AlgorithmName(algo);
      EXPECT_EQ(par->stats.checks, seq->stats.checks) << AlgorithmName(algo);
      EXPECT_EQ(par->stats.pair_tests, seq->stats.pair_tests);
      EXPECT_EQ(par->stats.phase1_survivors, seq->stats.phase1_survivors);
      EXPECT_EQ(par->stats.io, seq->stats.io) << AlgorithmName(algo);
    }
  }
}

TEST(QueryEngineTest, EngineWithIntraQueryThreadsMatchesSequential) {
  Workload wl(13, 4000);
  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, wl.instance.data, Algorithm::kTRS);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  QueryEngineOptions plain;
  plain.num_workers = 1;
  plain.rs = SmallMemory();
  QueryEngine engine1(*prepared, wl.instance.space, Algorithm::kTRS, plain);
  auto expected = engine1.RunBatch(wl.queries);
  ASSERT_TRUE(expected.ok()) << expected.status();

  QueryEngineOptions intra;
  intra.num_workers = 4;
  intra.rs = SmallMemory();
  intra.rs.num_threads = 2;  // engine wires its pool as the executor
  QueryEngine engine4(*prepared, wl.instance.space, Algorithm::kTRS, intra);
  auto batch = engine4.RunBatch(wl.queries);
  ASSERT_TRUE(batch.ok()) << batch.status();

  ExpectBatchesIdentical(*expected, *batch);
}

}  // namespace
}  // namespace nmrs
