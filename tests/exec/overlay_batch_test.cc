#include <memory>
#include <vector>

#include "data/generators.h"
#include "exec/overlay_exec.h"
#include "exec/query_engine.h"
#include "exec/sharded_engine.h"
#include "gtest/gtest.h"
#include "sim/matrix_overlay.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

// The overlay contract (docs/OVERLAYS.md): RunOverlayBatch's rows are
// bit-identical to rebuilding each user's patched SimilaritySpace and
// running the full batch per user — for every algorithm, composed with
// workers, caching, kernels, shared scans, sharding and replica faults.

constexpr Algorithm kAllAlgorithms[] = {Algorithm::kNaive, Algorithm::kBRS,
                                        Algorithm::kSRS, Algorithm::kTRS};

struct OverlayWorkload {
  OverlayWorkload() : instance(20260809, 1200, {5, 6, 7}) {
    Rng rng(271828);
    for (int i = 0; i < 8; ++i) {
      queries.push_back(SampleUniformQuery(instance.data, rng));
    }
    const double touch[] = {0.02, 0.10, 0.35};
    for (double t : touch) {
      Rng fork = rng.Fork();
      overlays.push_back(std::make_unique<MatrixOverlay>(
          MakeRandomOverlay(instance.space, fork, t)));
    }
  }

  std::vector<const MatrixOverlay*> OverlayPtrs() const {
    std::vector<const MatrixOverlay*> ptrs;
    for (const auto& o : overlays) ptrs.push_back(o.get());
    return ptrs;
  }

  RandomInstance instance;
  std::vector<Object> queries;
  std::vector<std::unique_ptr<MatrixOverlay>> overlays;
};

const OverlayWorkload& SharedWorkload() {
  static const OverlayWorkload* wl = new OverlayWorkload();
  return *wl;
}

// Reference: user u's rows computed the expensive way — patched space,
// full per-user batch through a fresh engine.
std::vector<std::vector<std::vector<RowId>>> RebuildReference(
    const PreparedDataset& prepared, Algorithm algo,
    const QueryEngineOptions& opts) {
  const OverlayWorkload& wl = SharedWorkload();
  std::vector<std::vector<std::vector<RowId>>> rows(
      wl.queries.size(),
      std::vector<std::vector<RowId>>(wl.overlays.size()));
  for (size_t u = 0; u < wl.overlays.size(); ++u) {
    const SimilaritySpace patched = wl.overlays[u]->BuildPatchedSpace();
    QueryEngine engine(prepared, patched, algo, opts);
    auto batch = engine.RunBatch(wl.queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    NMRS_CHECK(batch->ok()) << batch->first_error();
    for (size_t q = 0; q < wl.queries.size(); ++q) {
      rows[q][u] = batch->results[q].rows;
    }
  }
  return rows;
}

void ExpectMatchesRebuild(const PreparedDataset& prepared, Algorithm algo,
                          QueryEngineOptions opts) {
  const OverlayWorkload& wl = SharedWorkload();
  QueryEngine engine(prepared, wl.instance.space, algo, opts);
  auto got = engine.RunOverlayBatch(wl.queries, wl.OverlayPtrs());
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(got->ok()) << got->first_error();
  const auto want = RebuildReference(prepared, algo, opts);
  for (size_t q = 0; q < wl.queries.size(); ++q) {
    for (size_t u = 0; u < wl.overlays.size(); ++u) {
      EXPECT_EQ(got->results[q][u].rows, want[q][u])
          << "algo=" << AlgorithmName(algo) << " q=" << q << " u=" << u;
    }
  }
}

TEST(OverlayBatchTest, MatchesPerUserRebuildAllAlgorithms) {
  const OverlayWorkload& wl = SharedWorkload();
  for (Algorithm algo : kAllAlgorithms) {
    SimulatedDisk disk;
    auto prep = PrepareDataset(&disk, wl.instance.data, algo);
    ASSERT_TRUE(prep.ok()) << prep.status();
    QueryEngineOptions opts;
    opts.num_workers = 4;
    ExpectMatchesRebuild(*prep, algo, opts);
  }
}

TEST(OverlayBatchTest, MatchesRebuildWithKernelsCacheAndSharedScans) {
  const OverlayWorkload& wl = SharedWorkload();
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, wl.instance.data, Algorithm::kSRS);
  ASSERT_TRUE(prep.ok()) << prep.status();
  QueryEngineOptions opts;
  opts.num_workers = 3;
  opts.rs.use_kernels = true;
  opts.cache_pages = 32;
  opts.shared_scan = true;
  opts.shared_scan_group = 3;
  ExpectMatchesRebuild(*prep, Algorithm::kSRS, opts);
}

TEST(OverlayBatchTest, MatchesRebuildUnderReplicaFaults) {
  const OverlayWorkload& wl = SharedWorkload();
  SimulatedDisk disk;
  PrepareOptions po;
  po.checksum_pages = true;
  auto prep = PrepareDataset(&disk, wl.instance.data, Algorithm::kBRS, po);
  ASSERT_TRUE(prep.ok()) << prep.status();
  QueryEngineOptions opts;
  opts.num_workers = 2;
  opts.rs.resilience.checksum_pages = true;
  opts.rs.resilience.replicas = 2;
  opts.faults.seed = 7;
  opts.faults.transient_read_p = 0.02;
  opts.faults.corrupt_p = 0.01;
  ExpectMatchesRebuild(*prep, Algorithm::kBRS, opts);
}

TEST(OverlayBatchTest, ResultsIndependentOfOverlayGroupAndWorkers) {
  const OverlayWorkload& wl = SharedWorkload();
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, wl.instance.data, Algorithm::kBRS);
  ASSERT_TRUE(prep.ok()) << prep.status();

  std::vector<std::vector<std::vector<RowId>>> baseline;
  for (size_t workers : {1u, 4u}) {
    for (size_t group : {1u, 2u, 16u}) {
      QueryEngineOptions opts;
      opts.num_workers = workers;
      opts.overlay_group = group;
      QueryEngine engine(*prep, wl.instance.space, Algorithm::kBRS, opts);
      auto got = engine.RunOverlayBatch(wl.queries, wl.OverlayPtrs());
      ASSERT_TRUE(got.ok()) << got.status();
      ASSERT_TRUE(got->ok()) << got->first_error();
      std::vector<std::vector<std::vector<RowId>>> rows(wl.queries.size());
      for (size_t q = 0; q < wl.queries.size(); ++q) {
        for (size_t u = 0; u < wl.overlays.size(); ++u) {
          rows[q].push_back(got->results[q][u].rows);
        }
      }
      if (baseline.empty()) {
        baseline = rows;
      } else {
        EXPECT_EQ(rows, baseline)
            << "workers=" << workers << " group=" << group;
      }
    }
  }
}

TEST(OverlayBatchTest, TelemetryAccountsEveryRowAndScan) {
  const OverlayWorkload& wl = SharedWorkload();
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, wl.instance.data, Algorithm::kBRS);
  ASSERT_TRUE(prep.ok()) << prep.status();
  QueryEngineOptions opts;
  opts.num_workers = 2;
  opts.overlay_group = 2;
  QueryEngine engine(*prep, wl.instance.space, Algorithm::kBRS, opts);
  auto got = engine.RunOverlayBatch(wl.queries, wl.OverlayPtrs());
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(got->ok()) << got->first_error();

  const uint64_t rows = wl.instance.data.num_rows();
  const uint64_t users = wl.overlays.size();
  EXPECT_EQ(got->sensitive_rows + got->invariant_rows, rows * users);
  EXPECT_GT(got->sensitive_rows, 0u);
  // Grouped scans: at most ceil(users / group) passes per query.
  const uint64_t max_scans =
      wl.queries.size() * ((users + opts.overlay_group - 1) /
                           opts.overlay_group);
  EXPECT_LE(got->recheck_scans, max_scans);
  EXPECT_GT(got->recheck_scans, 0u);
  EXPECT_GT(got->recheck_checks, 0u);
  EXPECT_GT(got->overlay_io.Total(), 0u);
  EXPECT_GT(got->ModeledMakespanMillis(), 0.0);
  EXPECT_GT(got->ModeledQps(), 0.0);
  // The base batch is carried inside and already complete.
  EXPECT_EQ(got->base.results.size(), wl.queries.size());
}

TEST(OverlayBatchTest, ShardedMatchesPerUserRebuild) {
  const OverlayWorkload& wl = SharedWorkload();
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, wl.instance.data, Algorithm::kBRS);
  ASSERT_TRUE(prep.ok()) << prep.status();
  ShardPlanOptions plan;
  plan.num_shards = 3;
  auto sharded = ShardedDataset::Partition(*prep, plan);
  ASSERT_TRUE(sharded.ok()) << sharded.status();

  ShardedEngineOptions opts;
  opts.engine.num_workers = 3;
  ShardedQueryEngine engine(*sharded, wl.instance.space, Algorithm::kBRS,
                            opts);
  auto got = engine.RunOverlayBatch(wl.queries, wl.OverlayPtrs());
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(got->ok()) << got->first_error();

  for (size_t u = 0; u < wl.overlays.size(); ++u) {
    const SimilaritySpace patched = wl.overlays[u]->BuildPatchedSpace();
    ShardedQueryEngine ref(*sharded, patched, Algorithm::kBRS, opts);
    auto want = ref.RunBatch(wl.queries);
    ASSERT_TRUE(want.ok()) << want.status();
    ASSERT_TRUE(want->ok()) << want->first_error();
    for (size_t q = 0; q < wl.queries.size(); ++q) {
      EXPECT_EQ(got->results[q][u].rows, want->results[q].rows)
          << "q=" << q << " u=" << u;
    }
  }
  EXPECT_EQ(got->sensitive_rows + got->invariant_rows,
            wl.instance.data.num_rows() * wl.overlays.size());
}

TEST(OverlayBatchTest, InvariantOnlyUserAnswersFromBaseRun) {
  const OverlayWorkload& wl = SharedWorkload();
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, wl.instance.data, Algorithm::kNaive);
  ASSERT_TRUE(prep.ok()) << prep.status();

  // A delta on value ids the dataset never stores as candidate values
  // would need out-of-domain ids; instead use an empty-delta user next to
  // a real one: the empty overlay is invalid input for RunOverlayBatch's
  // per-user list only if null — an empty (never-Set) overlay classifies
  // every row invariant and must answer exactly the base rows.
  MatrixOverlay transparent(wl.instance.space);
  std::vector<const MatrixOverlay*> overlays = {wl.overlays[0].get(),
                                                &transparent};
  QueryEngine engine(*prep, wl.instance.space, Algorithm::kNaive, {});
  auto got = engine.RunOverlayBatch(wl.queries, overlays);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(got->ok()) << got->first_error();
  for (size_t q = 0; q < wl.queries.size(); ++q) {
    EXPECT_EQ(got->results[q][1].rows, got->base.results[q].rows) << q;
  }
}

TEST(OverlayBatchTest, RejectsInvalidOverlayArguments) {
  const OverlayWorkload& wl = SharedWorkload();
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, wl.instance.data, Algorithm::kNaive);
  ASSERT_TRUE(prep.ok()) << prep.status();
  QueryEngine engine(*prep, wl.instance.space, Algorithm::kNaive, {});

  EXPECT_TRUE(engine.RunOverlayBatch(wl.queries, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine.RunOverlayBatch(wl.queries, {nullptr})
                  .status()
                  .IsInvalidArgument());

  // Overlay over a different (if identical-looking) base space.
  RandomInstance other(20260809, 10, {5, 6, 7});
  Rng rng(1);
  MatrixOverlay foreign = MakeRandomOverlay(other.space, rng, 0.05);
  EXPECT_TRUE(engine.RunOverlayBatch(wl.queries, {&foreign})
                  .status()
                  .IsInvalidArgument());

  // Engine whose rs template already carries an overlay: ambiguous.
  QueryEngineOptions opts;
  opts.rs.overlay = wl.overlays[0].get();
  QueryEngine tainted(*prep, wl.instance.space, Algorithm::kNaive, opts);
  EXPECT_TRUE(tainted.RunOverlayBatch(wl.queries, wl.OverlayPtrs())
                  .status()
                  .IsInvalidArgument());
}

TEST(OverlayBatchTest, SingleQueryOverlayOptionMatchesPatchedSpace) {
  // RSOptions::overlay on a plain RunReverseSkyline call — the native
  // delta path — against the materialized patched space, per algorithm.
  const OverlayWorkload& wl = SharedWorkload();
  for (Algorithm algo : kAllAlgorithms) {
    SimulatedDisk disk;
    auto prep = PrepareDataset(&disk, wl.instance.data, algo);
    ASSERT_TRUE(prep.ok()) << prep.status();
    for (const auto& overlay : wl.overlays) {
      const SimilaritySpace patched = overlay->BuildPatchedSpace();
      for (const Object& query : wl.queries) {
        RSOptions with_overlay;
        with_overlay.overlay = overlay.get();
        auto got = RunReverseSkyline(*prep, wl.instance.space, query, algo,
                                     with_overlay);
        ASSERT_TRUE(got.ok()) << got.status();
        auto want = RunReverseSkyline(*prep, patched, query, algo, {});
        ASSERT_TRUE(want.ok()) << want.status();
        EXPECT_EQ(got->rows, want->rows) << AlgorithmName(algo);
      }
    }
  }
}

}  // namespace
}  // namespace nmrs
