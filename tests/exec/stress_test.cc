// Concurrency stress for the parallel query engine, meant to run under
// ThreadSanitizer (cmake -DNMRS_TSAN=ON, see ci.sh) as well as in plain
// builds. Deliberately gtest-free: the TSan build then only contains
// instrumented nmrs code, avoiding false positives from uninstrumented
// prebuilt test libraries. Exits 0 on success, aborts on any violation.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/sync.h"
#include "data/generators.h"
#include "db/database.h"
#include "exec/query_engine.h"
#include "exec/sharded_engine.h"
#include "exec/thread_pool.h"
#include "sim/dissimilarity_matrix.h"
#include "sim/matrix_overlay.h"
#include "storage/buffer_pool.h"
#include "storage/disk_view.h"
#include "storage/paged_reader.h"

namespace nmrs {
namespace {

// Hammer the work-stealing pool, including tasks that submit nested tasks
// (the shape ParallelChunks produces from inside a pool worker).
void StressThreadPool() {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  WaitGroup wg;
  constexpr int kOuter = 200;
  constexpr int kInner = 10;
  wg.Add(kOuter * (1 + kInner));
  for (int i = 0; i < kOuter; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      for (int j = 0; j < kInner; ++j) {
        pool.Submit([&] {
          count.fetch_add(1);
          wg.Done();
        });
      }
      wg.Done();
    });
  }
  wg.Wait();
  NMRS_CHECK_EQ(count.load(), kOuter * (1 + kInner));
  std::printf("pool stress: %d tasks ok\n", count.load());
}

// Concurrent ReadPage on one shared SimulatedDisk: the accounting mutex
// must keep counters exact (the seq/rand split depends on interleaving,
// the total must not).
void StressSharedDiskReaders() {
  SimulatedDisk disk;
  const FileId f = disk.CreateFile("shared");
  Page page(disk.page_size());
  constexpr uint64_t kPages = 8;
  for (uint64_t p = 0; p < kPages; ++p) {
    NMRS_CHECK(disk.AppendPage(f, page).ok());
  }
  disk.ResetStats();

  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&disk, f, t] {
      Page out(0);
      for (int i = 0; i < kReadsPerThread; ++i) {
        NMRS_CHECK(
            disk.ReadPage(f, static_cast<PageId>((t + i) % kPages), &out)
                .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  NMRS_CHECK_EQ(disk.stats().TotalReads(),
                static_cast<uint64_t>(kThreads) * kReadsPerThread);
  std::printf("shared-disk readers: %llu reads ok\n",
              static_cast<unsigned long long>(disk.stats().TotalReads()));
}

// Concurrent DiskViews over one frozen base: reads plus view-local scratch
// writes, with per-view accounting staying exact.
void StressDiskViews() {
  SimulatedDisk base;
  const FileId f = base.CreateFile("base");
  Page page(base.page_size());
  constexpr uint64_t kPages = 16;
  for (uint64_t p = 0; p < kPages; ++p) {
    NMRS_CHECK(base.AppendPage(f, page).ok());
  }
  base.ResetStats();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&base, f] {
      DiskView view(&base);
      Page out(0);
      const FileId scratch = view.CreateFile("scratch");
      for (int round = 0; round < 50; ++round) {
        for (uint64_t p = 0; p < kPages; ++p) {
          NMRS_CHECK(view.ReadPage(f, p, &out).ok());
        }
        NMRS_CHECK(view.AppendPage(scratch, out).ok());
      }
      NMRS_CHECK_EQ(view.stats().TotalReads(), 50u * kPages);
      NMRS_CHECK_EQ(view.stats().TotalWrites(), 50u);
    });
  }
  for (auto& t : threads) t.join();
  NMRS_CHECK_EQ(base.stats().Total(), 0u);  // views never touch base stats
  std::printf("disk views: %d concurrent views ok\n", kThreads);
}

// Hammer one shared BufferPool from 8 threads, each reading through its own
// DiskView + PagedReader and occasionally holding pins, under heavy
// eviction pressure (capacity far below the file size). Checks the pool's
// global accounting against the per-thread sums and the charged disk reads.
void StressSharedBufferPool() {
  SimulatedDisk base;
  const FileId f = base.CreateFile("hot");
  constexpr uint64_t kPages = 64;
  {
    Page page(base.page_size());
    for (uint64_t p = 0; p < kPages; ++p) {
      page[0] = static_cast<uint8_t>(p);
      NMRS_CHECK(base.AppendPage(f, page).ok());
    }
  }
  base.ResetStats();

  BufferPoolOptions opts;
  opts.capacity_pages = kPages / 4;  // heavy eviction pressure
  opts.num_shards = 8;
  BufferPool pool(&base, opts);

  constexpr int kThreads = 8;
  constexpr int kRounds = 400;
  std::vector<CacheStats> per_thread(kThreads);
  std::vector<uint64_t> view_reads(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      DiskView view(&base);
      PagedReader reader(&view, &pool);
      Page out(0);
      for (int round = 0; round < kRounds; ++round) {
        // Mixed access: a short scan, a strided sweep, and a pinned read.
        const PageId start = static_cast<PageId>((t * 13 + round) % kPages);
        for (uint64_t i = 0; i < 6; ++i) {
          const PageId p = (start + i) % kPages;
          NMRS_CHECK(reader.ReadPage(f, p, &out).ok());
          NMRS_CHECK_EQ(out[0], static_cast<uint8_t>(p));
        }
        const PageId strided = (start * 7 + 3) % kPages;
        NMRS_CHECK(reader.ReadPage(f, strided, &out).ok());
        auto pinned = pool.Pin(&view, f, start);
        if (pinned.ok()) {  // a transiently all-pinned shard is legitimate
          NMRS_CHECK_EQ(pinned->page()[0], static_cast<uint8_t>(start));
          pinned->Release();
        } else {
          NMRS_CHECK(pinned.status().IsResourceExhausted())
              << pinned.status();
        }
      }
      per_thread[t] = reader.cache_stats();
      view_reads[t] = view.stats().TotalReads();
    });
  }
  for (auto& t : threads) t.join();

  // Per-reader attribution must add up to the pool's own counters for the
  // traffic that went through the readers (the direct Pin calls are in the
  // pool stats only), and every charged view read must be a reader miss.
  CacheStats reader_sum;
  uint64_t charged = 0;
  for (int t = 0; t < kThreads; ++t) {
    reader_sum += per_thread[t];
    charged += view_reads[t];
  }
  const CacheStats pool_stats = pool.stats();
  NMRS_CHECK_EQ(reader_sum.Lookups(),
                static_cast<uint64_t>(kThreads) * kRounds * 7);
  NMRS_CHECK(pool_stats.Lookups() >= reader_sum.Lookups());
  NMRS_CHECK(pool_stats.misses >= reader_sum.misses);
  // Charged reads = reader misses + direct-Pin misses, nothing else.
  NMRS_CHECK_EQ(charged, pool_stats.misses);
  NMRS_CHECK(pool.PagesCached() <= opts.capacity_pages);
  NMRS_CHECK(base.stats().Total() == 0u);  // views charge themselves
  std::printf("shared buffer pool: %llu lookups, %llu misses, %llu"
              " evictions ok\n",
              static_cast<unsigned long long>(pool_stats.Lookups()),
              static_cast<unsigned long long>(pool_stats.misses),
              static_cast<unsigned long long>(pool_stats.evictions));
}

// The engine path with a shared cache: results must match the uncached
// engine at every worker count, and total charged reads must not exceed it.
void StressEngineWithSharedCache() {
  Rng rng(99);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards = {6, 7, 8};
  Dataset data = GenerateNormal(4000, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  std::vector<Object> queries;
  for (int i = 0; i < 24; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, data, Algorithm::kBRS);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  BatchResult uncached;
  {
    QueryEngineOptions opts;
    opts.num_workers = 1;
    opts.rs.memory = MemoryBudget{2};
    QueryEngine engine(*prepared, space, Algorithm::kBRS, opts);
    auto batch = engine.RunBatch(queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    uncached = std::move(*batch);
  }
  for (size_t workers : {1u, 8u}) {
    QueryEngineOptions opts;
    opts.num_workers = workers;
    opts.rs.memory = MemoryBudget{2};
    opts.cache_pages = prepared->stored.num_pages();  // eviction pressure
    QueryEngine engine(*prepared, space, Algorithm::kBRS, opts);
    auto batch = engine.RunBatch(queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    for (size_t i = 0; i < queries.size(); ++i) {
      NMRS_CHECK(batch->results[i].rows == uncached.results[i].rows);
    }
    NMRS_CHECK(batch->total_io.TotalReads() <= uncached.total_io.TotalReads());
  }
  std::printf("engine with shared cache: %zu queries identical\n",
              queries.size());
}

// Shared scans under contention: 8 workers each drive a group's shared
// phase-1 pass (one kernel + gather cache per group) against the shared
// buffer pool, concurrently with other groups. Per-query rows and check
// counts must match per-query execution, and the group-once IO accounting
// must add up, at every worker count.
void StressSharedScanBatch() {
  Rng rng(4242);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards = {6, 7, 8};
  Dataset data = GenerateNormal(4000, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  std::vector<Object> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, data, Algorithm::kSRS);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  BatchResult reference;
  {
    QueryEngineOptions opts;
    opts.num_workers = 1;
    opts.rs.memory = MemoryBudget{2};
    opts.rs.use_kernels = true;
    QueryEngine engine(*prepared, space, Algorithm::kSRS, opts);
    auto batch = engine.RunBatch(queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    NMRS_CHECK(batch->ok());
    reference = std::move(*batch);
  }
  for (size_t workers : {1u, 8u}) {
    QueryEngineOptions opts;
    opts.num_workers = workers;
    opts.rs.memory = MemoryBudget{2};
    opts.rs.use_kernels = true;
    opts.shared_scan = true;
    opts.shared_scan_group = 8;  // 64 queries -> 8 concurrent groups
    opts.cache_pages = prepared->stored.num_pages();
    QueryEngine engine(*prepared, space, Algorithm::kSRS, opts);
    auto batch = engine.RunBatch(queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    NMRS_CHECK(batch->ok());
    NMRS_CHECK_EQ(batch->shared_scan_groups, queries.size() / 8);
    for (size_t i = 0; i < queries.size(); ++i) {
      NMRS_CHECK(batch->results[i].rows == reference.results[i].rows);
      NMRS_CHECK_EQ(batch->results[i].stats.checks,
                    reference.results[i].stats.checks);
      NMRS_CHECK_EQ(batch->results[i].stats.pair_tests,
                    reference.results[i].stats.pair_tests);
    }
    IoStats sum = batch->shared_io;
    for (const auto& r : batch->results) sum += r.stats.io;
    NMRS_CHECK(sum == batch->total_io);
  }
  std::printf("shared-scan batch: %zu queries in %zu groups identical\n",
              queries.size(), queries.size() / 8);
}

// Full engine: batch fan-out plus intra-query chunks on the same pool,
// checked for worker-count independence.
void StressQueryEngine() {
  Rng rng(1234);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards = {6, 7, 8};
  Dataset data = GenerateNormal(4000, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  std::vector<Object> queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, data, Algorithm::kTRS);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  BatchResult reference;
  bool have_reference = false;
  for (size_t workers : {1u, 8u}) {
    QueryEngineOptions opts;
    opts.num_workers = workers;
    opts.rs.memory = MemoryBudget{2};
    opts.rs.num_threads = workers > 1 ? 2 : 1;
    QueryEngine engine(*prepared, space, Algorithm::kTRS, opts);
    auto batch = engine.RunBatch(queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    if (!have_reference) {
      reference = std::move(*batch);
      have_reference = true;
      continue;
    }
    NMRS_CHECK(batch->total_io == reference.total_io);
    for (size_t i = 0; i < queries.size(); ++i) {
      NMRS_CHECK(batch->results[i].rows == reference.results[i].rows);
      NMRS_CHECK(batch->results[i].stats.io == reference.results[i].stats.io);
    }
  }
  std::printf("query engine: %zu queries identical across worker counts\n",
              queries.size());
}

// The fault path under contention: 8 workers share the batch quarantine
// log and fault-counter accounting while transients, bad pages and
// clean-view retries fire. Outcomes must be identical across worker
// counts and runs (the docs/ROBUSTNESS.md determinism contract).
void StressFaultBatch() {
  Rng rng(777);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards = {6, 7, 8};
  Dataset data = GenerateNormal(6000, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  std::vector<Object> queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, data, Algorithm::kSRS);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  QueryEngineOptions base;
  base.faults.seed = 4242;
  base.faults.transient_read_p = 0.03;
  base.faults.bad_pages.insert({prepared->stored.file(), 1});
  base.rs.resilience.retry.max_attempts = 2;
  base.max_query_retries = 1;

  BatchResult reference;
  bool have_reference = false;
  for (size_t workers : {1u, 8u, 8u}) {
    QueryEngineOptions opts = base;
    opts.num_workers = workers;
    QueryEngine engine(*prepared, space, Algorithm::kSRS, opts);
    auto batch = engine.RunBatch(queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!batch->statuses[i].ok()) {
        NMRS_CHECK(batch->statuses[i].IsStorageFault()) << batch->statuses[i];
      }
    }
    if (!have_reference) {
      reference = std::move(*batch);
      have_reference = true;
      continue;
    }
    NMRS_CHECK(batch->total_io == reference.total_io);
    NMRS_CHECK(batch->quarantined == reference.quarantined);
    NMRS_CHECK_EQ(batch->queries_retried, reference.queries_retried);
    for (size_t i = 0; i < queries.size(); ++i) {
      NMRS_CHECK(batch->results[i].rows == reference.results[i].rows);
      NMRS_CHECK(batch->results[i].stats.io == reference.results[i].stats.io);
      NMRS_CHECK(batch->statuses[i].ToString() ==
                 reference.statuses[i].ToString());
    }
  }
  std::printf("fault batch: %zu queries, %llu retried, %zu quarantined, "
              "identical across worker counts\n",
              queries.size(),
              static_cast<unsigned long long>(reference.queries_retried),
              reference.quarantined.size());
}

// Concurrent page-granular failover against one shared BufferPool: every
// thread reads through its own corrupting primary replica with a clean
// failover replica behind it, all routed through the same pool. Failing
// reads evict shared frames while other threads fetch and heal them — the
// shared-cache race the replica layer must survive (and the reason fault
// BATCHES run shared-nothing; standalone readers may still share a pool).
// Every read must come back verified, from whichever replica had good
// bytes.
void StressConcurrentFailover() {
  SimulatedDisk base;
  const FileId f = base.CreateFile("sealed");
  constexpr uint64_t kPages = 64;
  for (uint64_t p = 0; p < kPages; ++p) {
    Page page(base.page_size());
    for (size_t i = 0; i < page.size(); ++i) {
      page[i] = static_cast<uint8_t>(p + i);
    }
    page.Seal();
    NMRS_CHECK(base.AppendPage(f, page).ok());
  }

  BufferPoolOptions popts;
  popts.capacity_pages = 16;  // eviction pressure on top of the healing
  BufferPool pool(&base, popts);

  constexpr int kThreads = 8;
  ReplicaSetOptions rso;
  rso.num_replicas = 2;
  rso.num_workers = kThreads;
  FaultConfig corrupting;
  corrupting.seed = 31337;
  corrupting.corrupt_p = 0.3;
  rso.faults = {corrupting, FaultConfig{}};
  ReplicaSet set(&base, rso);

  std::atomic<uint64_t> failovers{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&set, &pool, &failovers, f, t] {
      std::vector<std::unique_ptr<FaultyDisk>> wrappers;
      auto disks = set.MakeQueryDisks(t, static_cast<uint64_t>(t), &wrappers);
      PagedReaderOptions opts;
      opts.verify_checksums = true;
      opts.failover = {disks[1]};
      PagedReader reader(disks[0], &pool, opts);
      Page out(0);
      for (int i = 0; i < 400; ++i) {
        const PageId p = static_cast<PageId>((t * 7 + i) % kPages);
        NMRS_CHECK(reader.ReadPage(f, p, &out).ok())
            << "thread " << t << " page " << p;
        NMRS_CHECK(out.VerifySeal()) << "thread " << t << " page " << p;
      }
      failovers.fetch_add(reader.failovers(), std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  NMRS_CHECK(failovers.load() > 0) << "corrupt_p fired no failover";
  std::printf("concurrent failover: %d threads, %llu failovers, "
              "all reads verified\n",
              kThreads, static_cast<unsigned long long>(failovers.load()));
}

// A replica batch under contention: replica 0 is completely dead, results
// and per-query accounting (failovers included) must still be identical
// across worker counts and repeat runs.
void StressReplicaBatch() {
  Rng rng(888);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards = {6, 7, 8};
  Dataset data = GenerateNormal(6000, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  std::vector<Object> queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, data, Algorithm::kSRS);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  QueryEngineOptions base;
  base.rs.resilience.replicas = 2;
  FaultConfig dead;
  dead.seed = 6;
  dead.data_loss_p = 1.0;
  base.replica_faults = {dead, FaultConfig{}};

  BatchResult reference;
  bool have_reference = false;
  for (size_t workers : {1u, 8u, 8u}) {
    QueryEngineOptions opts = base;
    opts.num_workers = workers;
    QueryEngine engine(*prepared, space, Algorithm::kSRS, opts);
    auto batch = engine.RunBatch(queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    NMRS_CHECK(batch->ok()) << batch->first_error();
    if (!have_reference) {
      reference = std::move(*batch);
      have_reference = true;
      continue;
    }
    NMRS_CHECK(batch->total_io == reference.total_io);
    for (size_t i = 0; i < queries.size(); ++i) {
      NMRS_CHECK(batch->results[i].rows == reference.results[i].rows);
      NMRS_CHECK(batch->results[i].stats.io == reference.results[i].stats.io);
    }
  }
  NMRS_CHECK(reference.total_io.failovers > 0);
  std::printf("replica batch: %zu queries over a dead replica, %llu "
              "failovers, identical across worker counts\n",
              queries.size(),
              static_cast<unsigned long long>(reference.total_io.failovers));
}

// The overlay executor under contention: 8 workers share the base batch,
// the classification result and the per-(query, user-group) re-check
// scans, with a shared page cache underneath. Every (query, user) answer
// must be bit-identical to rebuilding that user's patched space, and
// invariant across worker counts and overlay group sizes. This is the
// TSan workout for the overlay data structures (the shared alive bitmaps,
// the per-lane modeled-time slots and the fold-in of scan IO).
void StressOverlayBatch() {
  Rng rng(20260809);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  Rng orng = rng.Fork();
  const std::vector<size_t> cards = {6, 7, 8};
  Dataset data = GenerateNormal(3000, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  std::vector<Object> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }
  constexpr size_t kUsers = 8;
  std::vector<MatrixOverlay> overlays;
  overlays.reserve(kUsers);
  for (size_t u = 0; u < kUsers; ++u) {
    overlays.push_back(
        MakeRandomOverlay(space, orng, 0.02 + 0.01 * static_cast<double>(u)));
  }
  std::vector<const MatrixOverlay*> ptrs;
  for (const auto& o : overlays) ptrs.push_back(&o);

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, data, Algorithm::kBRS);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  // Per-user patched-space rebuild: the correctness oracle.
  std::vector<std::vector<std::vector<RowId>>> want(
      queries.size(), std::vector<std::vector<RowId>>(kUsers));
  for (size_t u = 0; u < kUsers; ++u) {
    SimilaritySpace patched = overlays[u].BuildPatchedSpace();
    QueryEngineOptions opts;
    opts.num_workers = 1;
    QueryEngine engine(*prepared, patched, Algorithm::kBRS, opts);
    auto batch = engine.RunBatch(queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    NMRS_CHECK(batch->ok()) << batch->first_error();
    for (size_t q = 0; q < queries.size(); ++q) {
      want[q][u] = batch->results[q].rows;
    }
  }

  for (size_t workers : {1u, 8u, 8u}) {
    QueryEngineOptions opts;
    opts.num_workers = workers;
    opts.overlay_group = workers == 1 ? 3 : 16;
    opts.cache_pages = prepared->stored.num_pages();
    QueryEngine engine(*prepared, space, Algorithm::kBRS, opts);
    auto ob = engine.RunOverlayBatch(queries, ptrs);
    NMRS_CHECK(ob.ok()) << ob.status();
    NMRS_CHECK(ob->ok()) << ob->first_error();
    for (size_t q = 0; q < queries.size(); ++q) {
      for (size_t u = 0; u < kUsers; ++u) {
        NMRS_CHECK(ob->results[q][u].rows == want[q][u])
            << "workers " << workers << " query " << q << " user " << u;
      }
    }
    NMRS_CHECK_EQ(ob->sensitive_rows + ob->invariant_rows,
                  data.num_rows() * kUsers);
  }
  std::printf("overlay batch: %zu queries x %zu users identical to "
              "per-user rebuild\n",
              queries.size(), kUsers);
}

// Sharded scatter/gather under maximum scheduling pressure: many workers,
// few queries' worth of (query, shard) tasks per phase, a shared cache per
// shard, plus a run with a dead replica 0 — every combination must produce
// the same rows as the 1-shard run and be worker-count invariant. This is
// the TSan workout for the exchange data structures (per-(query, shard)
// slots, verdict bitmaps, the shared quarantine log and IO ledgers).
void StressShardedBatch() {
  Rng rng(4242);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards = {6, 7, 8};
  Dataset data = GenerateNormal(5000, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  std::vector<Object> queries;
  for (int i = 0; i < 24; ++i) {
    queries.push_back(SampleUniformQuery(data, rng));
  }

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, data, Algorithm::kBRS);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  std::vector<std::vector<RowId>> want;
  for (int shards = 1; shards <= 4; ++shards) {
    ShardPlanOptions plan;
    plan.num_shards = shards;
    auto sharded = ShardedDataset::Partition(*prepared, plan);
    NMRS_CHECK(sharded.ok()) << sharded.status();

    ShardedBatchResult reference;
    bool have_reference = false;
    for (size_t workers : {1u, 8u, 8u}) {
      ShardedEngineOptions opts;
      opts.engine.num_workers = workers;
      opts.engine.cache_pages = 32;
      ShardedQueryEngine engine(*sharded, space, Algorithm::kBRS, opts);
      auto batch = engine.RunBatch(queries);
      NMRS_CHECK(batch.ok()) << batch.status();
      NMRS_CHECK(batch->ok()) << batch->first_error();
      if (!have_reference) {
        reference = std::move(*batch);
        have_reference = true;
        continue;
      }
      NMRS_CHECK(batch->total_messages == reference.total_messages);
      for (size_t i = 0; i < queries.size(); ++i) {
        NMRS_CHECK(batch->results[i].rows == reference.results[i].rows);
      }
    }

    if (shards == 1) {
      for (const auto& r : reference.results) want.push_back(r.rows);
    } else {
      for (size_t i = 0; i < queries.size(); ++i) {
        NMRS_CHECK(reference.results[i].rows == want[i])
            << "shards=" << shards << " query " << i;
      }
    }

    // A dead replica 0 on every shard: page-granular failover must still
    // produce the same rows with all workers fighting over the exchange.
    ShardedEngineOptions fopts;
    fopts.engine.num_workers = 8;
    fopts.engine.rs.resilience.replicas = 2;
    FaultConfig dead;
    dead.seed = 6;
    dead.data_loss_p = 1.0;
    fopts.engine.replica_faults = {dead, FaultConfig{}};
    ShardedQueryEngine engine(*sharded, space, Algorithm::kBRS, fopts);
    auto batch = engine.RunBatch(queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    NMRS_CHECK(batch->ok()) << batch->first_error();
    NMRS_CHECK(batch->total_io.failovers > 0);
    for (size_t i = 0; i < queries.size(); ++i) {
      NMRS_CHECK(batch->results[i].rows == want[i]);
    }
  }
  std::printf("sharded batch: %zu queries x shards 1..4, cache + dead "
              "replica, rows identical throughout\n",
              queries.size());
}

// Mutable database under concurrent writers and readers: one writer
// thread streams inserts/deletes (and periodic compactions) while reader
// threads pin snapshots and run batches. Checks: every snapshot is
// internally consistent (row count = base at pin + delta at pin), queries
// on a pinned snapshot are repeatable while mutations continue, and the
// delta's version ordering never exposes a delete whose insert is missing.
void StressMutableDatabase() {
  Rng rng(777);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const std::vector<size_t> cards = {6, 5, 7};
  Dataset data = GenerateNormal(400, cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  DatabaseOptions opts;
  opts.algo = Algorithm::kTRS;
  opts.engine.num_workers = 2;
  auto db = Database::Open(data, space, opts);
  NMRS_CHECK(db.ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mutations{0};

  std::thread writer([&] {
    Rng wrng(1234);
    std::vector<uint64_t> live;
    for (uint64_t k = 0; k < 400; ++k) live.push_back(k);
    for (int i = 0; i < 600; ++i) {
      if (!live.empty() && wrng.Uniform(3) == 0) {
        const size_t pick = wrng.Uniform(live.size());
        NMRS_CHECK((*db)->Delete(live[pick]).ok());
        live.erase(live.begin() + pick);
      } else {
        std::vector<ValueId> values(cards.size());
        for (size_t a = 0; a < cards.size(); ++a) {
          values[a] = static_cast<ValueId>(wrng.Uniform(cards[a]));
        }
        auto key = (*db)->Insert(values);
        NMRS_CHECK(key.ok());
        live.push_back(*key);
      }
      mutations.fetch_add(1);
      if (i % 150 == 149) NMRS_CHECK((*db)->Compact().ok());
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  std::atomic<uint64_t> batches{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng qrng(9000 + t);
      while (!stop.load()) {
        auto snap = (*db)->Snapshot();
        NMRS_CHECK(snap.ok());
        std::vector<Object> queries;
        for (int q = 0; q < 3; ++q) {
          std::vector<ValueId> values(cards.size());
          for (size_t a = 0; a < cards.size(); ++a) {
            values[a] = static_cast<ValueId>(qrng.Uniform(cards[a]));
          }
          queries.push_back(data.MakeObject(values, {}));
        }
        auto first = snap->RunBatch(queries);
        NMRS_CHECK(first.ok());
        NMRS_CHECK(first->ok());
        // Repeatable read: the pinned snapshot answers identically even
        // though the writer keeps mutating underneath.
        auto second = snap->RunBatch(queries);
        NMRS_CHECK(second.ok());
        for (size_t q = 0; q < queries.size(); ++q) {
          NMRS_CHECK(first->results()[q].rows == second->results()[q].rows);
        }
        for (size_t q = 0; q < queries.size(); ++q) {
          for (RowId r : first->results()[q].rows) {
            NMRS_CHECK(r < snap->num_rows());
          }
        }
        batches.fetch_add(1);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // Final state sanity against a single-threaded replay of the same writer
  // sequence.
  auto final_snap = (*db)->Snapshot();
  NMRS_CHECK(final_snap.ok());
  NMRS_CHECK_EQ(final_snap->num_rows(), (*db)->num_rows());
  std::printf("mutable db stress: %llu mutations, %llu reader batches ok\n",
              static_cast<unsigned long long>(mutations.load()),
              static_cast<unsigned long long>(batches.load()));
}

}  // namespace
}  // namespace nmrs

int main() {
  nmrs::StressThreadPool();
  nmrs::StressSharedDiskReaders();
  nmrs::StressDiskViews();
  nmrs::StressSharedBufferPool();
  nmrs::StressEngineWithSharedCache();
  nmrs::StressSharedScanBatch();
  nmrs::StressQueryEngine();
  nmrs::StressFaultBatch();
  nmrs::StressConcurrentFailover();
  nmrs::StressReplicaBatch();
  nmrs::StressOverlayBatch();
  nmrs::StressShardedBatch();
  nmrs::StressMutableDatabase();
  std::printf("exec stress: all ok\n");
  return 0;
}
