#include <string>
#include <vector>

#include "data/generators.h"
#include "exec/query_engine.h"
#include "gtest/gtest.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

// End-to-end fault behavior of QueryEngine::RunBatch: graceful per-query
// degradation, clean-view recovery, and the determinism guarantee — a fixed
// (seed, fault config, batch) produces byte-identical results, statuses and
// fault counters across runs and worker counts.

struct Workload {
  Workload() : instance(41, 8000, {6, 7, 8}) {
    Rng rng(271828);
    for (int i = 0; i < 64; ++i) {
      queries.push_back(SampleUniformQuery(instance.data, rng));
    }
  }

  RandomInstance instance;
  std::vector<Object> queries;
};

class FaultBatchTest : public ::testing::Test {
 protected:
  FaultBatchTest() {
    prepared_ = std::make_unique<StatusOr<PreparedDataset>>(
        PrepareDataset(&disk_, wl_.instance.data, Algorithm::kSRS));
    EXPECT_TRUE(prepared_->ok()) << prepared_->status();
  }

  const PreparedDataset& prepared() const { return **prepared_; }

  BatchResult RunWith(QueryEngineOptions opts) {
    QueryEngine engine(prepared(), wl_.instance.space, Algorithm::kSRS,
                       opts);
    auto batch = engine.RunBatch(wl_.queries);
    EXPECT_TRUE(batch.ok()) << batch.status();
    return std::move(*batch);
  }

  // The fault-free ground truth every comparison keys off.
  BatchResult CleanBaseline() { return RunWith(QueryEngineOptions{}); }

  Workload wl_;
  SimulatedDisk disk_;
  std::unique_ptr<StatusOr<PreparedDataset>> prepared_;
};

void ExpectIdentical(const BatchResult& a, const BatchResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].rows, b.results[i].rows) << "query " << i;
    EXPECT_EQ(a.results[i].stats.io, b.results[i].stats.io) << "query " << i;
    EXPECT_EQ(a.statuses[i].ToString(), b.statuses[i].ToString())
        << "query " << i;
  }
  EXPECT_EQ(a.total_io, b.total_io);
  EXPECT_EQ(a.queries_retried, b.queries_retried);
  EXPECT_EQ(a.quarantined, b.quarantined);
}

TEST_F(FaultBatchTest, FaultsOffIsBitIdenticalToDefaultEngine) {
  // Guard for the seed path: an engine with every fault option explicitly
  // at its default produces byte-identical output to the default engine,
  // with all fault counters zero and no checksum footer in play.
  BatchResult plain = CleanBaseline();
  QueryEngineOptions off;
  off.faults = FaultConfig{};  // disabled
  off.rs.resilience.checksum_pages = false;
  off.max_query_retries = 0;
  BatchResult explicit_off = RunWith(off);
  ExpectIdentical(plain, explicit_off);
  EXPECT_TRUE(plain.ok());
  EXPECT_EQ(plain.num_failed(), 0u);
  EXPECT_TRUE(plain.quarantined.empty());
  EXPECT_EQ(plain.queries_retried, 0u);
  EXPECT_EQ(plain.total_io.transient_retries, 0u);
  EXPECT_EQ(plain.total_io.checksum_failures, 0u);
  EXPECT_EQ(plain.total_io.quarantined_pages, 0u);
}

TEST_F(FaultBatchTest, BadPagesFailEveryScanningQueryGracefully) {
  // A permanently bad page in the dataset is hit by every full-scan query:
  // the batch must complete with 64 individual kDataLoss statuses and
  // partial stats — not die on the first error.
  const PageId mid =
      static_cast<PageId>(disk_.NumPages(prepared().stored.file()) / 2);
  QueryEngineOptions opts;
  opts.faults.seed = 1;
  opts.faults.bad_pages.insert({prepared().stored.file(), 0});
  opts.faults.bad_pages.insert({prepared().stored.file(), mid});
  BatchResult batch = RunWith(opts);

  EXPECT_FALSE(batch.ok());
  EXPECT_EQ(batch.num_failed(), wl_.queries.size());
  EXPECT_TRUE(batch.first_error().IsDataLoss()) << batch.first_error();
  for (size_t i = 0; i < batch.statuses.size(); ++i) {
    EXPECT_TRUE(batch.statuses[i].IsDataLoss()) << batch.statuses[i];
    EXPECT_TRUE(batch.statuses[i].IsStorageFault());
    EXPECT_TRUE(batch.results[i].rows.empty());
    // The dead scan still charged the pages it touched before dying.
    EXPECT_GT(batch.results[i].stats.io.Total(), 0u) << "query " << i;
  }
  // The sequential phase-1 scan dies on page 0, so only the first bad page
  // is ever reached (and therefore quarantined).
  ASSERT_EQ(batch.quarantined.size(), 1u);
  EXPECT_EQ(batch.quarantined[0],
            (std::pair<FileId, PageId>{prepared().stored.file(), 0}));
}

TEST_F(FaultBatchTest, CleanViewRetryRecoversEveryQuery) {
  // Same bad page, but max_query_retries models a replica read: every
  // query fails its faulty attempt and succeeds on the clean view, so the
  // batch ends fully correct while still reporting what went wrong.
  BatchResult clean = CleanBaseline();
  QueryEngineOptions opts;
  opts.faults.seed = 1;
  opts.faults.bad_pages.insert({prepared().stored.file(), 0});
  opts.max_query_retries = 1;
  BatchResult batch = RunWith(opts);

  EXPECT_TRUE(batch.ok());
  EXPECT_EQ(batch.queries_retried, wl_.queries.size());
  ASSERT_EQ(batch.quarantined.size(), 1u);
  for (size_t i = 0; i < batch.results.size(); ++i) {
    EXPECT_EQ(batch.results[i].rows, clean.results[i].rows) << "query " << i;
    // Replica-read accounting: the reported stats are the successful
    // attempt's, identical to a clean run.
    EXPECT_EQ(batch.results[i].stats.io, clean.results[i].stats.io);
  }
}

TEST_F(FaultBatchTest, TransientStormIsolatesAffectedQueries) {
  // No page-level retries: every transient kills its query, so a
  // deterministic subset of the batch fails while the rest must stay
  // bit-identical to the clean baseline.
  BatchResult clean = CleanBaseline();
  QueryEngineOptions opts;
  opts.faults.seed = 1009;
  opts.faults.transient_read_p = 0.05;
  opts.rs.resilience.retry.max_attempts = 1;
  BatchResult batch = RunWith(opts);

  EXPECT_GT(batch.num_failed(), 0u) << "seed produced no affected query";
  EXPECT_LT(batch.num_failed(), wl_.queries.size())
      << "seed affected every query";
  for (size_t i = 0; i < batch.results.size(); ++i) {
    if (batch.statuses[i].ok()) {
      EXPECT_EQ(batch.results[i].rows, clean.results[i].rows)
          << "unaffected query " << i << " diverged";
      EXPECT_EQ(batch.results[i].stats.io, clean.results[i].stats.io);
    } else {
      EXPECT_TRUE(batch.statuses[i].IsDataLoss()) << batch.statuses[i];
      EXPECT_TRUE(batch.results[i].rows.empty());
    }
  }
  EXPECT_FALSE(batch.quarantined.empty());
}

TEST_F(FaultBatchTest, AcceptanceScenarioTransientsPlusBadPages) {
  // The headline scenario: 64 queries, p = 1e-3 transients with the
  // default retry budget (which absorbs them), 2 permanently bad pages,
  // and one clean-view query retry. Affected queries report storage-fault
  // statuses on their faulty attempt and recover on the replica; the whole
  // batch returns correct rows.
  BatchResult clean = CleanBaseline();
  const PageId mid =
      static_cast<PageId>(disk_.NumPages(prepared().stored.file()) / 2);

  QueryEngineOptions opts;
  opts.faults.seed = 7;
  opts.faults.transient_read_p = 1e-3;
  opts.faults.bad_pages.insert({prepared().stored.file(), mid});
  opts.faults.bad_pages.insert({prepared().stored.file(), mid + 1});

  // Without recovery: the batch completes, unaffected-by-definition there
  // are none (every scan crosses the bad page), every status is in the
  // kDataLoss/kCorruption family, partial stats flow.
  BatchResult no_retry = RunWith(opts);
  EXPECT_EQ(no_retry.num_failed(), wl_.queries.size());
  for (const Status& s : no_retry.statuses) {
    EXPECT_TRUE(s.IsStorageFault()) << s;
  }

  // With recovery: every query returns the correct rows.
  opts.max_query_retries = 1;
  BatchResult recovered = RunWith(opts);
  EXPECT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.queries_retried, wl_.queries.size());
  for (size_t i = 0; i < recovered.results.size(); ++i) {
    EXPECT_EQ(recovered.results[i].rows, clean.results[i].rows)
        << "query " << i;
  }
  // The first bad page the scans reach is quarantined and reported.
  ASSERT_FALSE(recovered.quarantined.empty());
  EXPECT_EQ(recovered.quarantined[0],
            (std::pair<FileId, PageId>{prepared().stored.file(), mid}));
}

TEST_F(FaultBatchTest, FaultPatternIsIndependentOfWorkerCountAndRuns) {
  QueryEngineOptions opts;
  opts.faults.seed = 99;
  opts.faults.transient_read_p = 0.05;
  // Some retries fire and are absorbed.
  opts.rs.resilience.retry.max_attempts = 2;

  BatchResult reference = RunWith(opts);  // default workers
  EXPECT_GT(reference.total_io.transient_retries, 0u);
  for (size_t workers : {1u, 8u}) {
    for (int run = 0; run < 2; ++run) {
      QueryEngineOptions o = opts;
      o.num_workers = workers;
      BatchResult batch = RunWith(o);
      ExpectIdentical(reference, batch);
    }
  }
}

TEST_F(FaultBatchTest, FailFastRestoresLegacySemantics) {
  QueryEngineOptions opts;
  opts.faults.seed = 1;
  opts.faults.bad_pages.insert({prepared().stored.file(), 0});
  opts.fail_fast = true;
  QueryEngine engine(prepared(), wl_.instance.space, Algorithm::kSRS, opts);
  auto batch = engine.RunBatch(wl_.queries);
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsDataLoss()) << batch.status();
}

TEST_F(FaultBatchTest, ChecksummedBatchSurvivesCorruptionViaRetry) {
  // Silent corruption + checksummed dataset: queries see kCorruption on
  // the faulty attempt and recover on the clean view. (Corruption with
  // checksums *off* is undetectable by design — covered in the reader
  // tests — so a corrupting batch config only makes sense sealed.)
  SimulatedDisk disk;
  PrepareOptions popts;
  popts.checksum_pages = true;
  auto prepared =
      PrepareDataset(&disk, wl_.instance.data, Algorithm::kSRS, popts);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  QueryEngineOptions clean_opts;  // engine auto-enables verification
  QueryEngine clean_engine(*prepared, wl_.instance.space, Algorithm::kSRS,
                           clean_opts);
  auto clean = clean_engine.RunBatch(wl_.queries);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->ok()) << clean->first_error();

  QueryEngineOptions opts;
  opts.faults.seed = 3;
  opts.faults.corrupt_p = 0.02;
  opts.max_query_retries = 1;
  QueryEngine engine(*prepared, wl_.instance.space, Algorithm::kSRS, opts);
  auto batch = engine.RunBatch(wl_.queries);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_TRUE(batch->ok()) << batch->first_error();
  EXPECT_GT(batch->total_io.checksum_failures +
                static_cast<uint64_t>(batch->queries_retried),
            0u)
      << "corruption config fired nothing; raise corrupt_p";
  for (size_t i = 0; i < batch->results.size(); ++i) {
    EXPECT_EQ(batch->results[i].rows, clean->results[i].rows)
        << "query " << i;
  }
}

TEST_F(FaultBatchTest, ReplicaFailoverCompletesBatchWithZeroFailures) {
  // The PR 5 acceptance scenario: one replica suffers persistent data loss
  // (p = 1e-3 probabilistic bad sectors plus a guaranteed bad page 0 every
  // scan crosses), the other replica(s) are healthy, and there are NO
  // query-level retries — recovery must come entirely from page-granular
  // failover. The batch completes with zero failed queries and rows
  // bit-identical to the fault-free run.
  BatchResult clean = CleanBaseline();
  for (int replicas : {2, 3}) {
    FaultConfig lossy;
    lossy.seed = 4242;
    lossy.data_loss_p = 1e-3;
    lossy.bad_pages.insert({prepared().stored.file(), 0});

    QueryEngineOptions opts;
    opts.rs.resilience.replicas = replicas;
    opts.replica_faults.assign(static_cast<size_t>(replicas), FaultConfig{});
    opts.replica_faults[0] = lossy;
    opts.max_query_retries = 0;
    BatchResult batch = RunWith(opts);

    EXPECT_TRUE(batch.ok()) << "replicas=" << replicas << ": "
                            << batch.first_error();
    EXPECT_EQ(batch.num_failed(), 0u);
    EXPECT_EQ(batch.queries_retried, 0u);  // no clean-view re-runs happened
    EXPECT_TRUE(batch.quarantined.empty());  // no page failed EVERY replica
    EXPECT_GT(batch.total_io.failovers, 0u);
    EXPECT_GT(batch.total_io.replica_reads[1], 0u);
    for (size_t i = 0; i < batch.results.size(); ++i) {
      EXPECT_EQ(batch.results[i].rows, clean.results[i].rows)
          << "replicas=" << replicas << " query " << i;
    }
  }
}

TEST_F(FaultBatchTest, TotallyDeadReplicaIsDeterministicAcrossWorkerCounts) {
  // Replica 0 loses every page (p = 1.0): each reader pays one failover,
  // then sticks to the surviving replica. Results, statuses, and the full
  // per-query IO accounting (failovers and replica_reads included) must be
  // independent of worker count and repeatable.
  BatchResult clean = CleanBaseline();
  FaultConfig dead;
  dead.seed = 5;
  dead.data_loss_p = 1.0;

  QueryEngineOptions opts;
  opts.rs.resilience.replicas = 2;
  opts.replica_faults = {dead, FaultConfig{}};
  BatchResult reference = RunWith(opts);

  EXPECT_TRUE(reference.ok()) << reference.first_error();
  EXPECT_GT(reference.total_io.failovers, 0u);
  EXPECT_GT(reference.total_io.replica_reads[1], 0u);
  for (size_t i = 0; i < reference.results.size(); ++i) {
    EXPECT_EQ(reference.results[i].rows, clean.results[i].rows)
        << "query " << i;
  }
  for (size_t workers : {1u, 8u}) {
    QueryEngineOptions o = opts;
    o.num_workers = workers;
    BatchResult batch = RunWith(o);
    ExpectIdentical(reference, batch);
  }
}

TEST_F(FaultBatchTest, SingleReplicaIsBitIdenticalToTheUnreplicatedEngine) {
  // replicas = 1 must be a pure no-op: same fault pattern (replica 0 keeps
  // the seed verbatim), same results, same accounting as an engine that
  // never heard of replicas — and the failover counters stay zero.
  QueryEngineOptions opts;
  opts.faults.seed = 99;
  opts.faults.transient_read_p = 0.05;
  opts.rs.resilience.retry.max_attempts = 2;
  BatchResult unreplicated = RunWith(opts);

  QueryEngineOptions one = opts;
  one.rs.resilience.replicas = 1;
  BatchResult single = RunWith(one);
  ExpectIdentical(unreplicated, single);
  EXPECT_EQ(single.total_io.failovers, 0u);
  EXPECT_EQ(single.total_io.ReplicaReadsTotal(), 0u);
}

TEST_F(FaultBatchTest, AllReplicasLosingAPageStillFailsTheQuery) {
  // Failover is not magic: when every replica lost the same page (same
  // explicit bad_pages on both), the queries that need it must still fail
  // and the page must be quarantined.
  FaultConfig lossy;
  lossy.seed = 1;
  lossy.bad_pages.insert({prepared().stored.file(), 0});

  QueryEngineOptions opts;
  opts.rs.resilience.replicas = 2;
  opts.replica_faults = {lossy, lossy};
  BatchResult batch = RunWith(opts);

  EXPECT_FALSE(batch.ok());
  EXPECT_EQ(batch.num_failed(), wl_.queries.size());
  EXPECT_TRUE(batch.first_error().IsDataLoss()) << batch.first_error();
  ASSERT_EQ(batch.quarantined.size(), 1u);
  EXPECT_EQ(batch.quarantined[0],
            (std::pair<FileId, PageId>{prepared().stored.file(), 0}));
}

TEST_F(FaultBatchTest, FailoverComposesWithChecksumsAndCorruption) {
  // Replica 0 silently corrupts aggressively; the dataset is checksummed,
  // so verification catches it and page reads fail over to the clean
  // replica instead of surfacing kCorruption.
  SimulatedDisk disk;
  PrepareOptions popts;
  popts.checksum_pages = true;
  auto prepared =
      PrepareDataset(&disk, wl_.instance.data, Algorithm::kSRS, popts);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  QueryEngine clean_engine(*prepared, wl_.instance.space, Algorithm::kSRS,
                           QueryEngineOptions{});
  auto clean = clean_engine.RunBatch(wl_.queries);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->ok()) << clean->first_error();

  FaultConfig corrupting;
  corrupting.seed = 3;
  corrupting.corrupt_p = 0.05;

  QueryEngineOptions opts;
  opts.rs.resilience.replicas = 2;
  opts.replica_faults = {corrupting, FaultConfig{}};
  QueryEngine engine(*prepared, wl_.instance.space, Algorithm::kSRS, opts);
  auto batch = engine.RunBatch(wl_.queries);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_TRUE(batch->ok()) << batch->first_error();
  EXPECT_GT(batch->total_io.checksum_failures, 0u)
      << "corruption config fired nothing; raise corrupt_p";
  EXPECT_GT(batch->total_io.failovers, 0u);
  for (size_t i = 0; i < batch->results.size(); ++i) {
    EXPECT_EQ(batch->results[i].rows, clean->results[i].rows)
        << "query " << i;
  }
}

}  // namespace
}  // namespace nmrs
