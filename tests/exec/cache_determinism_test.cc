#include <string_view>
#include <vector>

#include "data/generators.h"
#include "exec/query_engine.h"
#include "gtest/gtest.h"
#include "storage/disk_view.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

// ---------------------------------------------------------------------------
// Cache determinism regression (ISSUE 2): enabling the shared buffer pool
// must never change *what* a query returns, only what the reads cost.
// Concretely:
//   - result rows and dominance-check counts are bit-identical with the
//     pool on or off, at 1 and 8 workers;
//   - with a no-eviction cache (capacity >= dataset pages), total charged
//     reads/writes are invariant across worker counts, and the pool's
//     misses equal the number of distinct dataset pages (single-flight);
//   - charged reads with the cache never exceed the uncached run;
//   - at 1 worker any fixed configuration is exactly reproducible.
// See docs/CACHING.md for why per-query IO attribution and the seq/rand
// split are excluded at >1 worker.
// ---------------------------------------------------------------------------

struct Workload {
  Workload(uint64_t seed, uint64_t rows)
      : instance(seed, rows, {6, 7, 8}) {
    Rng rng(seed * 7919 + 1);
    for (int i = 0; i < 16; ++i) {
      queries.push_back(SampleUniformQuery(instance.data, rng));
    }
  }

  RandomInstance instance;
  std::vector<Object> queries;
};

RSOptions SmallMemory() {
  RSOptions rs;
  rs.memory = MemoryBudget{2};  // force multiple phase-1/phase-2 batches
  return rs;
}

BatchResult RunWith(const PreparedDataset& prepared,
                    const SimilaritySpace& space, Algorithm algo,
                    const std::vector<Object>& queries, size_t workers,
                    uint64_t cache_pages) {
  QueryEngineOptions opts;
  opts.num_workers = workers;
  opts.rs = SmallMemory();
  opts.cache_pages = cache_pages;
  QueryEngine engine(prepared, space, algo, opts);
  auto batch = engine.RunBatch(queries);
  EXPECT_TRUE(batch.ok()) << batch.status();
  return std::move(*batch);
}

void ExpectSameAnswers(const BatchResult& got, const BatchResult& want,
                       std::string_view label) {
  ASSERT_EQ(got.results.size(), want.results.size());
  for (size_t i = 0; i < got.results.size(); ++i) {
    EXPECT_EQ(got.results[i].rows, want.results[i].rows)
        << label << " query " << i;
    EXPECT_EQ(got.results[i].stats.checks, want.results[i].stats.checks)
        << label << " query " << i;
  }
}

TEST(CacheDeterminismTest, ResultsIdenticalWithPoolOnAndOff) {
  Workload wl(211, 5000);
  for (Algorithm algo :
       {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    SimulatedDisk disk;
    auto prepared = PrepareDataset(&disk, wl.instance.data, algo);
    ASSERT_TRUE(prepared.ok()) << prepared.status();
    const uint64_t pages = prepared->stored.num_pages();

    const BatchResult off =
        RunWith(*prepared, wl.instance.space, algo, wl.queries, 1, 0);
    for (size_t workers : {1u, 8u}) {
      for (uint64_t capacity : {pages, pages / 4 + 1}) {
        const BatchResult on = RunWith(*prepared, wl.instance.space, algo,
                                       wl.queries, workers, capacity);
        ExpectSameAnswers(on, off, AlgorithmName(algo));
        // A cache can only remove charged reads, never add them; writes
        // (per-query scratch spills, which bypass the pool) are untouched.
        EXPECT_LE(on.total_io.TotalReads(), off.total_io.TotalReads())
            << AlgorithmName(algo) << " workers=" << workers
            << " capacity=" << capacity;
        EXPECT_EQ(on.total_io.TotalWrites(), off.total_io.TotalWrites());
      }
    }
  }
}

TEST(CacheDeterminismTest, FullCacheTotalsAreWorkerCountInvariant) {
  Workload wl(212, 5000);
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kTRS}) {
    SimulatedDisk disk;
    auto prepared = PrepareDataset(&disk, wl.instance.data, algo);
    ASSERT_TRUE(prepared.ok()) << prepared.status();
    const uint64_t pages = prepared->stored.num_pages();

    // Capacity is split evenly across the pool's shards and pages hash to
    // shards, so "never evicts" needs every shard to be able to hold every
    // page: pages * num_shards frames. Then misses == distinct pages
    // touched regardless of how workers interleave (single-flight: the
    // shard mutex is held across the fetch, so exactly one worker is
    // charged per page).
    const uint64_t no_evict = pages * 8;
    const BatchResult one =
        RunWith(*prepared, wl.instance.space, algo, wl.queries, 1, no_evict);
    const BatchResult eight =
        RunWith(*prepared, wl.instance.space, algo, wl.queries, 8, no_evict);

    ExpectSameAnswers(eight, one, AlgorithmName(algo));
    EXPECT_EQ(one.total_io.cache_misses, pages) << AlgorithmName(algo);
    EXPECT_EQ(eight.total_io.cache_misses, pages) << AlgorithmName(algo);
    EXPECT_EQ(one.total_io.cache_evictions, 0u);
    EXPECT_EQ(eight.total_io.cache_evictions, 0u);
    EXPECT_EQ(one.total_io.TotalReads(), eight.total_io.TotalReads())
        << AlgorithmName(algo);
    EXPECT_EQ(one.total_io.TotalWrites(), eight.total_io.TotalWrites())
        << AlgorithmName(algo);
    // Every lookup past the cold set was served from memory: lookups =
    // hits + misses, and only misses reached a disk (all 16 queries scan
    // the same file, so there are far more lookups than pages).
    EXPECT_GT(one.total_io.cache_hits, 0u);
    EXPECT_EQ(one.total_io.cache_hits, eight.total_io.cache_hits);
  }
}

TEST(CacheDeterminismTest, SingleWorkerRunsAreReproducible) {
  Workload wl(213, 4000);
  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, wl.instance.data, Algorithm::kTRS);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  const uint64_t quarter = prepared->stored.num_pages() / 4 + 1;

  // Under eviction pressure the totals depend on the access interleaving —
  // but with one worker there is only one interleaving, so two runs of the
  // same configuration must match IoStats field for field.
  const BatchResult a = RunWith(*prepared, wl.instance.space,
                                Algorithm::kTRS, wl.queries, 1, quarter);
  const BatchResult b = RunWith(*prepared, wl.instance.space,
                                Algorithm::kTRS, wl.queries, 1, quarter);
  ExpectSameAnswers(a, b, "trs");
  EXPECT_EQ(a.total_io, b.total_io);
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].stats.io, b.results[i].stats.io) << "query " << i;
  }
}

TEST(CacheDeterminismTest, EnginePoolStatsMatchBatchTotals) {
  Workload wl(214, 3000);
  SimulatedDisk disk;
  auto prepared =
      PrepareDataset(&disk, wl.instance.data, Algorithm::kBRS);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  QueryEngineOptions opts;
  opts.num_workers = 4;
  opts.rs = SmallMemory();
  opts.cache_pages = prepared->stored.num_pages() * 8;
  QueryEngine engine(*prepared, wl.instance.space, Algorithm::kBRS, opts);
  ASSERT_NE(engine.buffer_pool(), nullptr);
  auto batch = engine.RunBatch(wl.queries);
  ASSERT_TRUE(batch.ok()) << batch.status();

  // The pool's own counters and the per-query accumulated cache fields are
  // two views of the same events.
  const CacheStats pool_stats = engine.buffer_pool()->stats();
  EXPECT_EQ(pool_stats.hits, batch->total_io.cache_hits);
  EXPECT_EQ(pool_stats.misses, batch->total_io.cache_misses);
  EXPECT_EQ(pool_stats.evictions, batch->total_io.cache_evictions);
  EXPECT_GT(batch->total_io.CacheHitRatio(), 0.0);
}

TEST(CacheDeterminismTest, NoCacheEngineIsSeedIdentical) {
  // cache_pages == 0 must leave the engine bit-identical to the pre-cache
  // behavior: no pool object, no cache fields in any stats.
  Workload wl(215, 2000);
  SimulatedDisk disk;
  auto prepared =
      PrepareDataset(&disk, wl.instance.data, Algorithm::kTRS);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  QueryEngineOptions opts;
  opts.num_workers = 2;
  opts.rs = SmallMemory();
  QueryEngine engine(*prepared, wl.instance.space, Algorithm::kTRS, opts);
  EXPECT_EQ(engine.buffer_pool(), nullptr);
  auto batch = engine.RunBatch(wl.queries);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->total_io.cache_hits, 0u);
  EXPECT_EQ(batch->total_io.cache_misses, 0u);
  EXPECT_EQ(batch->total_io.cache_evictions, 0u);
}

}  // namespace
}  // namespace nmrs
