// Fault-injection chaos soak (docs/ROBUSTNESS.md, ci.sh `chaos` stage).
//
// Sweeps many seeded random fault configurations through the batch engine
// and checks the robustness layer's core contract on each: a query the
// faults did not touch must return rows and IO bit-identical to the clean
// run, a query the faults did touch must either recover exactly or fail
// with a storage-fault status — never crash, never silently return wrong
// rows. Each config also runs at two worker counts to re-check that fault
// patterns are scheduling-independent.
//
// Deliberately gtest-free (like exec_stress) so sanitizer builds contain
// only instrumented nmrs code. Exits 0 on success, aborts on violation.
//
// Configs also draw 1..3 storage replicas; most multi-replica configs
// fault a single replica (sometimes killing it outright), where the
// contract tightens to "page-granular failover recovers every query".
// --min-replicas=2 restricts the sweep to multi-replica configs (the ci.sh
// replica chaos stage).
//
// Usage: chaos_soak [--configs=N] [--seed=S] [--min-replicas=R]
// (defaults: 500, 20260807, 1)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "data/generators.h"
#include "db/database.h"
#include "exec/query_engine.h"
#include "exec/sharded_engine.h"
#include "sim/dissimilarity_matrix.h"
#include "sim/matrix_overlay.h"

namespace nmrs {
namespace {

struct Scenario {
  Dataset data;
  SimilaritySpace space;
  std::vector<Object> queries;
  Algorithm algo = Algorithm::kSRS;
  bool checksums = false;
};

Scenario MakeScenario(Rng& rng) {
  const std::vector<size_t> cards = {5, 6, 7};
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  const uint64_t rows = 1000 + rng.Uniform(2000);
  Scenario s{GenerateNormal(rows, cards, data_rng), {}, {}};
  for (size_t card : cards) {
    s.space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  const size_t num_queries = 8 + rng.Uniform(9);
  for (size_t i = 0; i < num_queries; ++i) {
    s.queries.push_back(SampleUniformQuery(s.data, rng));
  }
  const Algorithm algos[] = {Algorithm::kNaive, Algorithm::kBRS,
                             Algorithm::kSRS, Algorithm::kTRS};
  s.algo = algos[rng.Uniform(4)];
  s.checksums = rng.Bernoulli(0.5);
  return s;
}

// One random fault configuration. Corruption only makes sense against a
// sealed dataset (without checksums it is undetectable by design and would
// legitimately change result rows), so corrupt_p stays 0 unless the
// scenario checksums its pages.
FaultConfig MakeFaults(Rng& rng, const PreparedDataset& prepared,
                       bool checksums) {
  FaultConfig cfg;
  cfg.seed = rng.Next64();
  const double transient_grades[] = {0.0, 1e-3, 1e-2, 0.05};
  cfg.transient_read_p = transient_grades[rng.Uniform(4)];
  if (checksums) {
    const double corrupt_grades[] = {0.0, 1e-3, 1e-2};
    cfg.corrupt_p = corrupt_grades[rng.Uniform(3)];
  }
  const double loss_grades[] = {0.0, 1e-3, 1e-2};
  cfg.data_loss_p = loss_grades[rng.Uniform(3)];
  const uint64_t pages =
      prepared.stored.disk()->NumPages(prepared.stored.file());
  const size_t num_bad = rng.Uniform(3);  // 0..2 permanently bad pages
  for (size_t i = 0; i < num_bad && pages > 0; ++i) {
    cfg.bad_pages.insert(
        {prepared.stored.file(), static_cast<PageId>(rng.Uniform(pages))});
  }
  return cfg;
}

uint64_t FaultCounterSum(const IoStats& io) {
  // A failover-recovered query legitimately charges extra IO (the failed
  // replica attempt + the replica read), so failovers count as "touched by
  // faults" alongside the PR 3 counters.
  return io.transient_retries + io.checksum_failures + io.quarantined_pages +
         io.failovers;
}

void CheckConfig(int index, uint64_t scenario_seed, int min_replicas) {
  Rng rng(scenario_seed);
  Scenario s = MakeScenario(rng);

  SimulatedDisk disk;
  PrepareOptions popts;
  popts.checksum_pages = s.checksums;
  auto prepared = PrepareDataset(&disk, s.data, s.algo, popts);
  NMRS_CHECK(prepared.ok()) << prepared.status();

  // Clean baseline (same checksum setting, no faults).
  BatchResult clean;
  {
    QueryEngineOptions opts;
    opts.num_workers = 2;
    auto batch = QueryEngine(*prepared, s.space, s.algo, opts)
                     .RunBatch(s.queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    NMRS_CHECK(batch->ok()) << batch->first_error();
    clean = std::move(*batch);
  }

  QueryEngineOptions fopts;
  fopts.faults = MakeFaults(rng, *prepared, s.checksums);
  fopts.rs.resilience.retry.max_attempts = 1 + static_cast<int>(rng.Uniform(3));
  fopts.max_query_retries = static_cast<int>(rng.Uniform(2));

  // Replica failover (docs/ROBUSTNESS.md): 1..3 replicas. With >= 2, most
  // configs fault only replica 0 — sometimes killing it outright — which
  // upgrades the contract: page-granular failover to the healthy replicas
  // must recover EVERY query, no failures allowed.
  const int replicas =
      min_replicas +
      static_cast<int>(rng.Uniform(static_cast<uint64_t>(4 - min_replicas)));
  bool expect_zero_failures = false;
  if (replicas >= 2) {
    fopts.rs.resilience.replicas = replicas;
    if (rng.Bernoulli(0.7)) {
      FaultConfig lossy = fopts.faults;
      if (rng.Bernoulli(0.25)) lossy.data_loss_p = 1.0;  // dead replica
      fopts.faults = FaultConfig{};
      fopts.replica_faults.assign(static_cast<size_t>(replicas),
                                  FaultConfig{});
      fopts.replica_faults[0] = lossy;
      expect_zero_failures = true;
    }
  }

  BatchResult reference;
  bool have_reference = false;
  for (size_t workers : {1u, 4u}) {
    QueryEngineOptions opts = fopts;
    opts.num_workers = workers;
    auto batch =
        QueryEngine(*prepared, s.space, s.algo, opts).RunBatch(s.queries);
    NMRS_CHECK(batch.ok()) << "config " << index << ": " << batch.status();

    if (expect_zero_failures) {
      NMRS_CHECK(batch->ok())
          << "config " << index << " (replicas=" << replicas
          << ", one faulted): failover left " << batch->num_failed()
          << " failed queries; first: " << batch->first_error();
    }

    for (size_t i = 0; i < s.queries.size(); ++i) {
      const Status& st = batch->statuses[i];
      if (st.ok()) {
        // Success means exactly the clean answer — recovered or untouched.
        NMRS_CHECK(batch->results[i].rows == clean.results[i].rows)
            << "config " << index << " query " << i
            << ": rows diverged under faults";
        // Bit-identical IO: a fault-free query trivially, a retried-and-
        // absorbed query is skipped (its IO legitimately includes the
        // retries), a clean-view-recovered query reports the clean
        // attempt's stats and so also matches. Replica accounting is
        // normalized away first: with failover replicas attached every
        // read counts into replica_reads, which the (replica-less) clean
        // baseline leaves at zero.
        IoStats io = batch->results[i].stats.io;
        if (FaultCounterSum(io) == 0) {
          io.replica_reads = {};
          NMRS_CHECK(io == clean.results[i].stats.io)
              << "config " << index << " query " << i
              << ": fault-free IO diverged";
        }
      } else {
        NMRS_CHECK(st.IsStorageFault())
            << "config " << index << " query " << i
            << ": non-storage failure " << st;
        NMRS_CHECK(batch->results[i].rows.empty());
      }
    }

    if (!have_reference) {
      reference = std::move(*batch);
      have_reference = true;
    } else {
      // Worker count must not change anything observable.
      for (size_t i = 0; i < s.queries.size(); ++i) {
        NMRS_CHECK(batch->results[i].rows == reference.results[i].rows);
        NMRS_CHECK(batch->results[i].stats.io == reference.results[i].stats.io)
            << "config " << index << " query " << i
            << ": per-query IO depends on worker count";
        NMRS_CHECK(batch->statuses[i].ToString() ==
                   reference.statuses[i].ToString());
      }
      NMRS_CHECK(batch->total_io == reference.total_io);
      NMRS_CHECK(batch->quarantined == reference.quarantined);
      NMRS_CHECK(batch->queries_retried == reference.queries_retried);
    }
  }

  // Overlay leg (docs/OVERLAYS.md): the incremental multi-tenant executor
  // through the same fault config. The base run and the re-check scans all
  // go through the faulted storage, so the contract mirrors the plain
  // batch: an ok query must hand every user rows bit-identical to that
  // user's patched-space clean answer, a failed query reports a storage
  // fault, and nothing observable depends on the worker count. A small
  // query subset keeps the per-config cost down (the smoke run does 25
  // configs).
  {
    Rng orng = rng.Fork();
    std::vector<MatrixOverlay> overlays;
    overlays.push_back(MakeRandomOverlay(s.space, orng, 0.01));
    overlays.push_back(MakeRandomOverlay(s.space, orng, 0.10));
    std::vector<const MatrixOverlay*> optrs;
    for (const auto& o : overlays) optrs.push_back(&o);
    const std::vector<Object> oqueries(
        s.queries.begin(),
        s.queries.begin() +
            static_cast<long>(std::min<size_t>(4, s.queries.size())));

    // Per-user clean reference: rebuild each patched space and run the
    // plain engine over it, no faults.
    std::vector<std::vector<std::vector<RowId>>> owant(
        oqueries.size(), std::vector<std::vector<RowId>>(overlays.size()));
    for (size_t u = 0; u < overlays.size(); ++u) {
      SimilaritySpace patched = overlays[u].BuildPatchedSpace();
      QueryEngineOptions copts;
      copts.num_workers = 1;
      auto batch =
          QueryEngine(*prepared, patched, s.algo, copts).RunBatch(oqueries);
      NMRS_CHECK(batch.ok()) << batch.status();
      NMRS_CHECK(batch->ok()) << batch->first_error();
      for (size_t q = 0; q < oqueries.size(); ++q) {
        owant[q][u] = batch->results[q].rows;
      }
    }

    OverlayBatchResult oref;
    bool have_oref = false;
    for (size_t workers : {1u, 4u}) {
      QueryEngineOptions opts = fopts;
      opts.num_workers = workers;
      auto ob = QueryEngine(*prepared, s.space, s.algo, opts)
                    .RunOverlayBatch(oqueries, optrs);
      NMRS_CHECK(ob.ok()) << "config " << index << " (overlay): "
                          << ob.status();
      if (expect_zero_failures) {
        NMRS_CHECK(ob->ok())
            << "config " << index << " (overlay, replicas=" << replicas
            << ", one faulted): " << ob->first_error();
      }
      for (size_t q = 0; q < oqueries.size(); ++q) {
        if (ob->statuses[q].ok()) {
          for (size_t u = 0; u < overlays.size(); ++u) {
            NMRS_CHECK(ob->results[q][u].rows == owant[q][u])
                << "config " << index << " overlay query " << q << " user "
                << u << ": rows diverged under faults";
          }
        } else {
          NMRS_CHECK(ob->statuses[q].IsStorageFault())
              << "config " << index << " overlay query " << q
              << ": non-storage failure " << ob->statuses[q];
        }
      }
      if (!have_oref) {
        oref = std::move(*ob);
        have_oref = true;
      } else {
        for (size_t q = 0; q < oqueries.size(); ++q) {
          for (size_t u = 0; u < overlays.size(); ++u) {
            NMRS_CHECK(ob->results[q][u].rows == oref.results[q][u].rows);
          }
          NMRS_CHECK(ob->statuses[q].ToString() ==
                     oref.statuses[q].ToString());
        }
        NMRS_CHECK(ob->sensitive_rows == oref.sensitive_rows);
        NMRS_CHECK(ob->invariant_rows == oref.invariant_rows);
        NMRS_CHECK(ob->recheck_scans == oref.recheck_scans)
            << "config " << index
            << ": overlay re-check count depends on worker count";
      }
    }
  }

  // Sharded scatter/gather leg (docs/SHARDING.md): the same fault config
  // through 1..4 shards. The contract extends across shard counts: an ok
  // query returns exactly the clean single-shard rows no matter how the
  // data was partitioned, a failed query reports a storage fault, and
  // nothing observable depends on the worker count. (Any bad_pages target
  // the base file, so with > 1 shard they go dormant — the probabilistic
  // fault processes still run against every shard file.)
  ShardPlanOptions plan;
  plan.num_shards = 1 + static_cast<int>(rng.Uniform(4));
  plan.shard_by =
      rng.Bernoulli(0.5) ? ShardBy::kZOrderRange : ShardBy::kHash;
  auto sharded = ShardedDataset::Partition(*prepared, plan);
  NMRS_CHECK(sharded.ok()) << sharded.status();

  ShardedBatchResult sharded_ref;
  bool have_sharded_ref = false;
  for (size_t workers : {1u, 4u}) {
    ShardedEngineOptions sopts;
    sopts.engine = fopts;
    sopts.engine.num_workers = workers;
    auto batch = ShardedQueryEngine(*sharded, s.space, s.algo, sopts)
                     .RunBatch(s.queries);
    NMRS_CHECK(batch.ok()) << "config " << index
                           << " (shards=" << plan.num_shards
                           << "): " << batch.status();

    if (expect_zero_failures) {
      NMRS_CHECK(batch->ok())
          << "config " << index << " (shards=" << plan.num_shards
          << ", replicas=" << replicas << ", one faulted): failover left "
          << batch->num_failed()
          << " failed queries; first: " << batch->first_error();
    }

    for (size_t i = 0; i < s.queries.size(); ++i) {
      if (batch->statuses[i].ok()) {
        NMRS_CHECK(batch->results[i].rows == clean.results[i].rows)
            << "config " << index << " query " << i << " (shards="
            << plan.num_shards << "): rows depend on the partitioning";
      } else {
        NMRS_CHECK(batch->statuses[i].IsStorageFault())
            << "config " << index << " query " << i
            << ": non-storage failure " << batch->statuses[i];
        NMRS_CHECK(batch->results[i].rows.empty());
      }
    }

    if (!have_sharded_ref) {
      sharded_ref = std::move(*batch);
      have_sharded_ref = true;
    } else {
      for (size_t i = 0; i < s.queries.size(); ++i) {
        NMRS_CHECK(batch->results[i].rows == sharded_ref.results[i].rows);
        NMRS_CHECK(batch->results[i].stats.io ==
                   sharded_ref.results[i].stats.io)
            << "config " << index << " query " << i
            << ": sharded per-query IO depends on worker count";
        NMRS_CHECK(batch->statuses[i].ToString() ==
                   sharded_ref.statuses[i].ToString());
      }
      NMRS_CHECK(batch->total_io == sharded_ref.total_io);
      NMRS_CHECK(batch->total_messages == sharded_ref.total_messages);
      NMRS_CHECK(batch->tasks_retried == sharded_ref.tasks_retried);
    }
  }
}

// Mutable-database fault leg: storage faults injected into the WAL image
// and into the base generation a compaction streams from. Contract: damage
// is always *detected* — a torn WAL tail recovers the durable prefix, any
// earlier WAL damage and any generation-page damage surface as kCorruption
// — and never crashes, never silently yields a wrong generation.
void CheckMutationConfig(int index, uint64_t seed) {
  Rng rng(seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  Rng work_rng = rng.Fork();
  Rng fault_rng = rng.Fork();
  const std::vector<size_t> cards = {5, 6, 7};
  Dataset data = GenerateNormal(120 + work_rng.Uniform(80), cards, data_rng);
  SimilaritySpace space;
  for (size_t card : cards) {
    space.AddCategorical(MakeRandomMatrix(card, space_rng));
  }
  DatabaseOptions opts;
  const Algorithm algos[] = {Algorithm::kBRS, Algorithm::kSRS,
                             Algorithm::kTRS};
  opts.algo = algos[work_rng.Uniform(3)];
  opts.prepare.checksum_pages = true;  // damage must be detectable
  auto db = Database::Open(data, space, opts);
  NMRS_CHECK(db.ok());

  std::vector<uint64_t> live;
  for (uint64_t k = 0; k < data.num_rows(); ++k) live.push_back(k);
  const int kMutations = 30 + static_cast<int>(work_rng.Uniform(30));
  for (int i = 0; i < kMutations; ++i) {
    if (!live.empty() && work_rng.Uniform(3) == 0) {
      const size_t pick = work_rng.Uniform(live.size());
      NMRS_CHECK((*db)->Delete(live[pick]).ok());
      live.erase(live.begin() + pick);
    } else {
      std::vector<ValueId> values(cards.size());
      for (size_t a = 0; a < cards.size(); ++a) {
        values[a] = static_cast<ValueId>(work_rng.Uniform(cards[a]));
      }
      auto key = (*db)->Insert(values);
      NMRS_CHECK(key.ok());
      live.push_back(*key);
    }
  }

  // Clean recovery first: the undamaged WAL image must replay exactly.
  auto clean = Database::Recover(data, space, (*db)->wal_disk(),
                                 (*db)->wal_file(), opts);
  NMRS_CHECK(clean.ok());
  NMRS_CHECK(!clean->torn_tail);
  NMRS_CHECK(clean->db->num_rows() == (*db)->num_rows());

  // WAL fault: corrupt one random byte of one random page of the image.
  {
    const SimulatedDisk& src = (*db)->wal_disk();
    SimulatedDisk image(src.page_size());
    const FileId file = image.CreateFile("chaos.wal");
    const uint64_t pages = src.NumPages((*db)->wal_file());
    NMRS_CHECK(pages > 0);
    for (PageId p = 0; p < pages; ++p) {
      NMRS_CHECK(image.AppendPage(file, *src.PeekPage((*db)->wal_file(), p)).ok());
    }
    const PageId victim = fault_rng.Uniform(pages);
    Page bad = *image.PeekPage(file, victim);
    bad[fault_rng.Uniform(bad.size())] ^=
        static_cast<uint8_t>(1 + fault_rng.Uniform(255));
    NMRS_CHECK(image.WritePage(file, victim, bad).ok());

    auto recovered = Database::Recover(data, space, image, file, opts);
    if (victim + 1 == pages) {
      // Tail damage == crash mid-append: durable prefix survives.
      NMRS_CHECK(recovered.ok());
      NMRS_CHECK(recovered->torn_tail);
      NMRS_CHECK(recovered->records_replayed <= (*db)->stats().wal_records);
      auto snap = recovered->db->Snapshot();
      NMRS_CHECK(snap.ok());
      NMRS_CHECK(snap->num_rows() == recovered->db->num_rows());
    } else {
      NMRS_CHECK(recovered.status().code() == StatusCode::kCorruption);
    }
  }

  // Compaction fault: corrupt one sealed page of the base generation the
  // merge streams from, then force a materialization. It must refuse.
  {
    // Fold the delta first so the pinned snapshot IS the base generation —
    // the file the next compaction/materialization will stream from.
    NMRS_CHECK((*db)->Compact().ok());
    auto pin = (*db)->Snapshot();
    NMRS_CHECK(pin.ok());
    const StoredDataset& stored = pin->prepared().stored;
    const PageId victim = fault_rng.Uniform(stored.num_pages());
    Page bad = *stored.disk()->PeekPage(stored.file(), victim);
    bad[fault_rng.Uniform(bad.size())] ^=
        static_cast<uint8_t>(1 + fault_rng.Uniform(255));
    NMRS_CHECK(stored.disk()->WritePage(stored.file(), victim, bad).ok());

    NMRS_CHECK((*db)->Insert({0, 0, 0}).ok());  // dirty the delta
    const uint64_t gen_before = (*db)->generation();
    const Status compact = (*db)->Compact();
    NMRS_CHECK(compact.code() == StatusCode::kCorruption);
    NMRS_CHECK((*db)->generation() == gen_before);  // no damaged swap
    const auto snap = (*db)->Snapshot();  // materialization refuses too
    NMRS_CHECK(snap.status().code() == StatusCode::kCorruption);
  }
  (void)index;
}

}  // namespace
}  // namespace nmrs

int main(int argc, char** argv) {
  int configs = 500;
  int mutation_configs = 50;
  uint64_t seed = 20260807;
  int min_replicas = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--configs=", 10) == 0) {
      configs = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--mutations=", 12) == 0) {
      mutation_configs = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--min-replicas=", 15) == 0) {
      min_replicas = std::atoi(argv[i] + 15);
      if (min_replicas < 1 || min_replicas > 3) {
        std::fprintf(stderr, "--min-replicas must be in [1, 3]\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--configs=N] [--mutations=N] [--seed=S] "
                   "[--min-replicas=R]\n",
                   argv[0]);
      return 2;
    }
  }
  nmrs::Rng master(seed);
  for (int i = 0; i < configs; ++i) {
    nmrs::CheckConfig(i, master.Next64(), min_replicas);
    if ((i + 1) % 50 == 0 || i + 1 == configs) {
      std::printf("chaos soak: %d/%d configs ok\n", i + 1, configs);
      std::fflush(stdout);
    }
  }
  nmrs::Rng mut_master(seed ^ 0x9e3779b97f4a7c15ull);
  for (int i = 0; i < mutation_configs; ++i) {
    nmrs::CheckMutationConfig(i, mut_master.Next64());
    if ((i + 1) % 25 == 0 || i + 1 == mutation_configs) {
      std::printf("chaos soak: %d/%d mutation configs ok\n", i + 1,
                  mutation_configs);
      std::fflush(stdout);
    }
  }
  std::printf("chaos soak: all %d configs ok\n", configs + mutation_configs);
  return 0;
}
