#include <memory>
#include <string>
#include <vector>

#include "data/generators.h"
#include "exec/query_engine.h"
#include "exec/sharded_engine.h"
#include "gtest/gtest.h"
#include "testing/test_util.h"

namespace nmrs {
namespace {

using testing::RandomInstance;

// The sharding determinism contract (docs/SHARDING.md): result rows and
// statuses are bit-identical to single-shard execution for every shard
// count, partitioner, worker count, cache setting and replica/failover
// configuration — and with one shard the engine reproduces QueryEngine
// exactly, counters and IO included.

constexpr Algorithm kAllAlgorithms[] = {Algorithm::kNaive, Algorithm::kBRS,
                                        Algorithm::kSRS, Algorithm::kTRS};

struct Workload {
  Workload() : instance(97, 2500, {6, 7, 8}) {
    Rng rng(314159);
    for (int i = 0; i < 24; ++i) {
      queries.push_back(SampleUniformQuery(instance.data, rng));
    }
  }

  RandomInstance instance;
  std::vector<Object> queries;
};

const Workload& SharedWorkload() {
  static const Workload* wl = new Workload();
  return *wl;
}

struct Fixture {
  Fixture(Algorithm algo, int num_shards,
          ShardBy shard_by = ShardBy::kZOrderRange)
      : algo(algo) {
    const Workload& wl = SharedWorkload();
    auto prep = PrepareDataset(&disk, wl.instance.data, algo);
    NMRS_CHECK(prep.ok()) << prep.status();
    prepared = std::make_unique<PreparedDataset>(std::move(*prep));
    ShardPlanOptions plan;
    plan.num_shards = num_shards;
    plan.shard_by = shard_by;
    auto sh = ShardedDataset::Partition(*prepared, plan);
    NMRS_CHECK(sh.ok()) << sh.status();
    sharded = std::make_unique<ShardedDataset>(std::move(*sh));
  }

  ShardedBatchResult Run(ShardedEngineOptions opts = {}) {
    const Workload& wl = SharedWorkload();
    ShardedQueryEngine engine(*sharded, wl.instance.space, algo, opts);
    auto batch = engine.RunBatch(wl.queries);
    NMRS_CHECK(batch.ok()) << batch.status();
    return std::move(*batch);
  }

  Algorithm algo;
  SimulatedDisk disk;
  std::unique_ptr<PreparedDataset> prepared;
  std::unique_ptr<ShardedDataset> sharded;
};

BatchResult RunPlain(Algorithm algo, QueryEngineOptions opts = {}) {
  const Workload& wl = SharedWorkload();
  SimulatedDisk disk;
  auto prep = PrepareDataset(&disk, wl.instance.data, algo);
  NMRS_CHECK(prep.ok()) << prep.status();
  QueryEngine engine(*prep, wl.instance.space, algo, opts);
  auto batch = engine.RunBatch(wl.queries);
  NMRS_CHECK(batch.ok()) << batch.status();
  return std::move(*batch);
}

void ExpectSameRows(const ShardedBatchResult& got, const BatchResult& want,
                    const std::string& label) {
  ASSERT_EQ(got.results.size(), want.results.size()) << label;
  for (size_t i = 0; i < got.results.size(); ++i) {
    EXPECT_EQ(got.results[i].rows, want.results[i].rows)
        << label << " query " << i;
    EXPECT_EQ(got.statuses[i].ToString(), want.statuses[i].ToString())
        << label << " query " << i;
  }
}

void ExpectSameRows(const ShardedBatchResult& a, const ShardedBatchResult& b,
                    const std::string& label) {
  ASSERT_EQ(a.results.size(), b.results.size()) << label;
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].rows, b.results[i].rows)
        << label << " query " << i;
    EXPECT_EQ(a.statuses[i].ToString(), b.statuses[i].ToString())
        << label << " query " << i;
  }
}

TEST(ShardedDeterminismTest, EveryShardCountMatchesPlainEngineAllAlgorithms) {
  for (Algorithm algo : kAllAlgorithms) {
    const BatchResult want = RunPlain(algo);
    for (int shards = 1; shards <= 4; ++shards) {
      for (ShardBy by : {ShardBy::kZOrderRange, ShardBy::kHash}) {
        Fixture fx(algo, shards, by);
        ShardedBatchResult got = fx.Run();
        ExpectSameRows(got, want,
                       std::string(AlgorithmName(algo)) + " shards=" +
                           std::to_string(shards) + " by=" +
                           std::string(ShardByName(by)));
      }
    }
  }
}

TEST(ShardedDeterminismTest, SingleShardReproducesQueryEngineBitForBit) {
  // Partition(1) aliases the base file and runs no exchange: counters,
  // per-query IO and total IO must equal the plain engine's, not just rows.
  for (Algorithm algo : {Algorithm::kBRS, Algorithm::kTRS}) {
    const BatchResult want = RunPlain(algo);
    Fixture fx(algo, 1);
    ShardedBatchResult got = fx.Run();
    ASSERT_EQ(got.results.size(), want.results.size());
    for (size_t i = 0; i < got.results.size(); ++i) {
      EXPECT_EQ(got.results[i].rows, want.results[i].rows) << "query " << i;
      EXPECT_EQ(got.results[i].stats.io, want.results[i].stats.io)
          << "query " << i;
      EXPECT_EQ(got.results[i].stats.checks, want.results[i].stats.checks)
          << "query " << i;
      EXPECT_EQ(got.results[i].stats.pair_tests,
                want.results[i].stats.pair_tests)
          << "query " << i;
      EXPECT_EQ(got.results[i].stats.result_size,
                want.results[i].stats.result_size)
          << "query " << i;
    }
    EXPECT_EQ(got.total_io, want.total_io);
    EXPECT_EQ(got.total_messages, MessageStats{});
    EXPECT_EQ(fx.sharded->partition_io().Total(), 0u);  // file aliased
  }
}

TEST(ShardedDeterminismTest, WorkerCountAndCacheDoNotChangeResults) {
  for (int shards : {2, 4}) {
    Fixture fx(Algorithm::kSRS, shards);
    ShardedEngineOptions base;
    base.engine.num_workers = 1;
    const ShardedBatchResult want = fx.Run(base);
    for (size_t workers : {2u, 5u}) {
      for (uint64_t cache : {0u, 64u}) {
        ShardedEngineOptions opts;
        opts.engine.num_workers = workers;
        opts.engine.cache_pages = cache;
        ShardedBatchResult got = fx.Run(opts);
        ExpectSameRows(got, want,
                       "shards=" + std::to_string(shards) + " workers=" +
                           std::to_string(workers) + " cache=" +
                           std::to_string(cache));
        // Counters are worker-count independent for a fixed shard count.
        for (size_t i = 0; i < got.results.size(); ++i) {
          EXPECT_EQ(got.results[i].stats.checks, want.results[i].stats.checks)
              << "query " << i;
        }
        EXPECT_EQ(got.total_messages, want.total_messages);
      }
    }
  }
}

TEST(ShardedDeterminismTest, SharedScanMatchesPerQueryExecution) {
  for (int shards : {1, 3}) {
    Fixture fx(Algorithm::kBRS, shards);
    const ShardedBatchResult want = fx.Run();
    ShardedEngineOptions opts;
    opts.engine.shared_scan = true;
    opts.engine.shared_scan_group = 4;
    ShardedBatchResult got = fx.Run(opts);
    ExpectSameRows(got, want, "shared_scan shards=" + std::to_string(shards));
    EXPECT_GT(got.shared_scan_groups, 0u);
    EXPECT_EQ(got.total_messages, want.total_messages);
  }
}

TEST(ShardedDeterminismTest, ReplicaFailoverKeepsResultsBitIdentical) {
  // One dead-ish replica among two: every query must still produce the
  // clean rows, with failovers actually exercised.
  for (int shards : {1, 3}) {
    Fixture fx(Algorithm::kSRS, shards);
    const ShardedBatchResult want = fx.Run();

    // Replica 0 has probabilistic bad sectors plus a guaranteed-dead page
    // in every shard file; replica 1 is healthy. Recovery must come from
    // page-granular failover alone (no clean-view re-runs).
    FaultConfig lossy;
    lossy.seed = 4242;
    lossy.data_loss_p = 1e-3;
    for (int s = 0; s < shards; ++s) {
      lossy.bad_pages.insert({fx.sharded->shard(s).file(), 0});
    }
    ShardedEngineOptions opts;
    opts.engine.rs.resilience.replicas = 2;
    opts.engine.replica_faults = {lossy, FaultConfig{}};
    ShardedBatchResult got = fx.Run(opts);
    EXPECT_EQ(got.num_failed(), 0u) << got.first_error();
    ExpectSameRows(got, want, "failover shards=" + std::to_string(shards));
    EXPECT_GT(got.total_io.failovers, 0u)
        << "fault config too weak to exercise resilience";
    EXPECT_GT(got.total_io.replica_reads[1], 0u);

    // And again: the faulty run itself is deterministic.
    ShardedBatchResult again = fx.Run(opts);
    ExpectSameRows(got, again, "failover-repeat");
    EXPECT_EQ(got.total_io, again.total_io);
    EXPECT_EQ(got.tasks_retried, again.tasks_retried);
  }
}

TEST(ShardedDeterminismTest, FaultedSingleReplicaFailsQueriesInIsolation) {
  // Unrecoverable data loss on the only replica: affected queries fail,
  // the rest still match the clean rows — per-query isolation — and the
  // outcome is identical across worker counts.
  Fixture fx(Algorithm::kBRS, 3);
  const ShardedBatchResult want = fx.Run();

  ShardedEngineOptions opts;
  opts.engine.faults.seed = 1009;
  opts.engine.faults.transient_read_p = 0.02;
  opts.engine.rs.resilience.retry.max_attempts = 1;
  opts.engine.num_workers = 3;
  ShardedBatchResult got = fx.Run(opts);
  size_t failed = 0;
  for (size_t i = 0; i < got.results.size(); ++i) {
    if (!got.statuses[i].ok()) {
      ++failed;
      EXPECT_TRUE(got.statuses[i].IsStorageFault()) << got.statuses[i];
    } else {
      EXPECT_EQ(got.results[i].rows, want.results[i].rows) << "query " << i;
    }
  }
  EXPECT_GT(failed, 0u) << "fault config too weak";
  EXPECT_LT(failed, got.results.size()) << "fault config too strong";

  opts.engine.num_workers = 1;
  ShardedBatchResult serial = fx.Run(opts);
  ExpectSameRows(got, serial, "worker-invariance under faults");
}

TEST(ShardedDeterminismTest, MessageLedgerIsConsistent) {
  Fixture fx(Algorithm::kBRS, 4);
  ShardedBatchResult got = fx.Run();
  MessageStats sum;
  for (const ShardQueryBreakdown& b : got.breakdown) {
    // 3 rounds whenever the exchange ran for this query.
    if (b.messages.messages > 0) EXPECT_EQ(b.messages.rounds, 3u);
    sum += b.messages;
  }
  EXPECT_EQ(sum, got.total_messages);
  EXPECT_GT(got.total_messages.messages, 0u);
  EXPECT_GT(got.total_messages.bytes, 0u);
  EXPECT_GT(got.ExchangeModeledMillis(), 0.0);
  EXPECT_GT(got.ModeledMakespanMillis(), got.ExchangeModeledMillis());

  // Per-shard candidate counts cover every shard and sum to at least the
  // merged result size (local skylines over-approximate the global one).
  for (size_t q = 0; q < got.results.size(); ++q) {
    uint64_t cands = 0;
    for (uint64_t c : got.breakdown[q].shard_candidates) cands += c;
    EXPECT_GE(cands, got.results[q].rows.size()) << "query " << q;
  }
}

}  // namespace
}  // namespace nmrs
