#include "order/zorder.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "order/attribute_order.h"
#include "order/multi_sort.h"

namespace nmrs {
namespace {

TEST(ZValueTest, InterleavesBits2D) {
  // coords (x=0b11, y=0b01), 2 bits: z = y1 x1 y0 x0 = 0 1 1 1 = 0b0111.
  EXPECT_EQ(ZValue({0b11, 0b01}, 2), 0b0111u);
  EXPECT_EQ(ZValue({0, 0}, 2), 0u);
  EXPECT_EQ(ZValue({0b11, 0b11}, 2), 0b1111u);
}

TEST(ZValueTest, SingleDimensionIsIdentity) {
  for (uint32_t v : {0u, 1u, 5u, 255u}) {
    EXPECT_EQ(ZValue({v}, 8), v);
  }
}

TEST(ZValueTest, MonotoneInEachCoordinate) {
  EXPECT_LT(ZValue({1, 2}, 4), ZValue({1, 3}, 4));
  EXPECT_LT(ZValue({1, 2}, 4), ZValue({2, 2}, 4));
}

TEST(TileZOrderTest, ReturnsPermutation) {
  Rng rng(1);
  Dataset d = GenerateUniform(100, {8, 8, 8}, rng);
  auto order = TileZOrder(d, IdentityOrder(d.schema()), 4);
  ASSERT_EQ(order.size(), 100u);
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (RowId r = 0; r < 100; ++r) EXPECT_EQ(sorted[r], r);
}

TEST(TileZOrderTest, GroupsByTile) {
  // With tiles == cardinality, each distinct value is its own tile slice;
  // rows with identical values must be contiguous.
  Rng rng(2);
  Dataset d = GenerateUniform(200, {4, 4}, rng);
  auto order = TileZOrder(d, IdentityOrder(d.schema()), 4);
  Dataset t = d.Permuted(order);
  // Z-values along the permutation are non-decreasing by construction;
  // verify same-valued rows are adjacent.
  for (RowId r = 2; r < t.num_rows(); ++r) {
    const bool same_as_two_back = t.Value(r, 0) == t.Value(r - 2, 0) &&
                                  t.Value(r, 1) == t.Value(r - 2, 1);
    if (same_as_two_back) {
      EXPECT_TRUE(t.Value(r, 0) == t.Value(r - 1, 0) &&
                  t.Value(r, 1) == t.Value(r - 1, 1));
    }
  }
}

TEST(TileZOrderTest, HandlesManyAttributes) {
  // 10 attributes: bits per dim limited so the key fits in 64 bits.
  Rng rng(3);
  std::vector<size_t> cards(10, 16);
  Dataset d = GenerateUniform(50, cards, rng);
  auto order = TileZOrder(d, IdentityOrder(d.schema()), 16);
  EXPECT_EQ(order.size(), 50u);
}

TEST(TileZOrderTest, SingleTileFallsBackToLexSort) {
  Rng rng(4);
  Dataset d = GenerateUniform(60, {5, 5}, rng);
  auto z_order = TileZOrder(d, IdentityOrder(d.schema()), 1);
  auto lex_order = MultiAttributeSortOrder(d, IdentityOrder(d.schema()));
  // One tile for everything -> ordering is the within-tile lex sort.
  Dataset a = d.Permuted(z_order);
  Dataset b = d.Permuted(lex_order);
  for (RowId r = 0; r < 60; ++r) {
    EXPECT_EQ(a.Value(r, 0), b.Value(r, 0));
    EXPECT_EQ(a.Value(r, 1), b.Value(r, 1));
  }
}

}  // namespace
}  // namespace nmrs
