#include "order/multi_sort.h"

#include <gtest/gtest.h>

#include <utility>

#include "data/generators.h"
#include "order/attribute_order.h"
#include "storage/paged_reader.h"

namespace nmrs {
namespace {

// Disk decorator that silently flips one byte of every page read from files
// with id >= first_faulty (everything else forwards). Pointing it past the
// input file's id corrupts exactly the sort's spill runs and merge outputs,
// never the input — only checksum verification of spill reads can catch it.
class SpillCorruptor final : public SimulatedDisk {
 public:
  SpillCorruptor(SimulatedDisk* inner, FileId first_faulty)
      : SimulatedDisk(inner->page_size()),
        inner_(inner),
        first_faulty_(first_faulty) {}

  uint64_t corrupted_reads() const { return corrupted_reads_; }

  Status ReadPage(FileId file, PageId page, Page* out) override {
    NMRS_RETURN_IF_ERROR(inner_->ReadPage(file, page, out));
    if (file >= first_faulty_ && out->size() > 0) {
      (*out)[0] ^= 0x40;
      ++corrupted_reads_;
    }
    return Status::OK();
  }

  FileId CreateFile(std::string name) override {
    return inner_->CreateFile(std::move(name));
  }
  Status DeleteFile(FileId file) override { return inner_->DeleteFile(file); }
  Status TruncateFile(FileId file) override {
    return inner_->TruncateFile(file);
  }
  uint64_t NumPages(FileId file) const override {
    return inner_->NumPages(file);
  }
  bool FileExists(FileId file) const override {
    return inner_->FileExists(file);
  }
  Status WritePage(FileId file, PageId page, const Page& in) override {
    return inner_->WritePage(file, page, in);
  }
  const IoStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }
  void InvalidateArmPosition() override { inner_->InvalidateArmPosition(); }
  StatusOr<uint64_t> PagesOf(FileId file) const override {
    return inner_->PagesOf(file);
  }
  std::string FileName(FileId file) const override {
    return inner_->FileName(file);
  }
  uint64_t TotalPages() const override { return inner_->TotalPages(); }

 private:
  SimulatedDisk* inner_;
  FileId first_faulty_;
  uint64_t corrupted_reads_ = 0;
};

// True if rows appear in non-decreasing lexicographic order along
// attr_order.
bool IsLexSorted(const RowBatch& rows, const std::vector<AttrId>& attr_order) {
  for (size_t i = 1; i < rows.size(); ++i) {
    const ValueId* a = rows.row_values(i - 1);
    const ValueId* b = rows.row_values(i);
    for (AttrId attr : attr_order) {
      if (a[attr] < b[attr]) break;
      if (a[attr] > b[attr]) return false;
    }
  }
  return true;
}

TEST(MultiAttributeSortTest, OrdersLexicographically) {
  Dataset d(Schema::Categorical({3, 3}));
  d.AppendCategoricalRow({2, 0});
  d.AppendCategoricalRow({0, 2});
  d.AppendCategoricalRow({0, 1});
  d.AppendCategoricalRow({1, 0});
  auto order = MultiAttributeSortOrder(d, {0, 1});
  EXPECT_EQ(order, (std::vector<RowId>{2, 1, 3, 0}));
}

TEST(MultiAttributeSortTest, RespectsAttributeOrdering) {
  Dataset d(Schema::Categorical({3, 3}));
  d.AppendCategoricalRow({2, 0});
  d.AppendCategoricalRow({0, 2});
  // Sorting by attribute 1 first flips the order.
  auto order = MultiAttributeSortOrder(d, {1, 0});
  EXPECT_EQ(order, (std::vector<RowId>{0, 1}));
}

TEST(MultiAttributeSortTest, ClustersDuplicates) {
  Rng rng(1);
  Dataset d = GenerateUniform(200, {3, 3}, rng);
  auto order = MultiAttributeSortOrder(d, {0, 1});
  Dataset sorted = d.Permuted(order);
  // Identical rows must be adjacent after the sort.
  for (RowId r = 2; r < sorted.num_rows(); ++r) {
    const bool eq_prev = sorted.Value(r, 0) == sorted.Value(r - 2, 0) &&
                         sorted.Value(r, 1) == sorted.Value(r - 2, 1);
    if (eq_prev) {
      EXPECT_TRUE(sorted.Value(r, 0) == sorted.Value(r - 1, 0) &&
                  sorted.Value(r, 1) == sorted.Value(r - 1, 1));
    }
  }
}

class ExternalSortTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExternalSortTest, SortsAcrossMemoryBudgets) {
  const uint64_t mem_pages = GetParam();
  SimulatedDisk disk(256);
  Rng rng(7);
  Dataset d = GenerateUniform(500, {5, 5, 5}, rng);
  auto stored = StoredDataset::Create(&disk, d, "in");
  ASSERT_TRUE(stored.ok());

  const auto attr_order = IdentityOrder(d.schema());
  auto result = ExternalMultiAttributeSort(*stored, attr_order,
                                           MemoryBudget{mem_pages}, "out");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->sorted.num_rows(), 500u);

  RowBatch all(3, false);
  ASSERT_TRUE(result->sorted.ReadAll(&all).ok());
  ASSERT_EQ(all.size(), 500u);
  EXPECT_TRUE(IsLexSorted(all, attr_order));

  // Every original row id appears exactly once.
  std::vector<bool> seen(500, false);
  for (size_t i = 0; i < all.size(); ++i) {
    ASSERT_LT(all.id(i), 500u);
    EXPECT_FALSE(seen[all.id(i)]);
    seen[all.id(i)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(MemoryBudgets, ExternalSortTest,
                         ::testing::Values(2, 3, 4, 8, 64));

TEST(ExternalSortTest, SingleRunWhenMemoryCoversInput) {
  SimulatedDisk disk(256);
  Rng rng(8);
  Dataset d = GenerateUniform(50, {4, 4}, rng);
  auto stored = StoredDataset::Create(&disk, d, "in");
  ASSERT_TRUE(stored.ok());
  auto result = ExternalMultiAttributeSort(*stored, IdentityOrder(d.schema()),
                                           MemoryBudget{1000}, "out");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->initial_runs, 1u);
  EXPECT_EQ(result->merge_passes, 0u);
}

TEST(ExternalSortTest, MultiPassMergeWithTinyMemory) {
  SimulatedDisk disk(64);  // tiny pages -> many pages
  Rng rng(9);
  Dataset d = GenerateUniform(300, {6, 6}, rng);
  auto stored = StoredDataset::Create(&disk, d, "in");
  ASSERT_TRUE(stored.ok());
  ASSERT_GT(stored->num_pages(), 16u);
  auto result = ExternalMultiAttributeSort(*stored, IdentityOrder(d.schema()),
                                           MemoryBudget{3}, "out");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->initial_runs, 1u);
  EXPECT_GE(result->merge_passes, 2u);  // fan-in 2 over many runs
  RowBatch all(2, false);
  ASSERT_TRUE(result->sorted.ReadAll(&all).ok());
  EXPECT_TRUE(IsLexSorted(all, IdentityOrder(d.schema())));
}

TEST(ExternalSortTest, EmptyInput) {
  SimulatedDisk disk(256);
  Dataset d(Schema::Categorical({3}));
  auto stored = StoredDataset::Create(&disk, d, "in");
  ASSERT_TRUE(stored.ok());
  auto result = ExternalMultiAttributeSort(*stored, {0}, MemoryBudget{4},
                                           "out");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sorted.num_rows(), 0u);
}

TEST(ExternalSortTest, RejectsSubTwoPageMemory) {
  SimulatedDisk disk(256);
  Dataset d(Schema::Categorical({3}));
  auto stored = StoredDataset::Create(&disk, d, "in");
  ASSERT_TRUE(stored.ok());
  auto result =
      ExternalMultiAttributeSort(*stored, {0}, MemoryBudget{1}, "out");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ExternalSortTest, CleansUpIntermediateRuns) {
  SimulatedDisk disk(64);
  Rng rng(10);
  Dataset d = GenerateUniform(200, {5, 5}, rng);
  auto stored = StoredDataset::Create(&disk, d, "in");
  ASSERT_TRUE(stored.ok());
  auto result = ExternalMultiAttributeSort(*stored, IdentityOrder(d.schema()),
                                           MemoryBudget{3}, "out");
  ASSERT_TRUE(result.ok());
  // Only the input and the final sorted file remain on disk.
  EXPECT_EQ(disk.TotalPages(),
            stored->num_pages() + result->sorted.num_pages());
}

TEST(ExternalSortTest, PreservesNumericPayload) {
  SimulatedDisk disk(512);
  Rng rng(11);
  Dataset d = GenerateMixed(200, {4, 4}, 1, 8, rng);
  auto stored = StoredDataset::Create(&disk, d, "in");
  ASSERT_TRUE(stored.ok());
  auto result = ExternalMultiAttributeSort(*stored, IdentityOrder(d.schema()),
                                           MemoryBudget{3}, "out");
  ASSERT_TRUE(result.ok()) << result.status();
  RowBatch all(3, true);
  ASSERT_TRUE(result->sorted.ReadAll(&all).ok());
  ASSERT_EQ(all.size(), 200u);
  for (size_t i = 0; i < all.size(); ++i) {
    const RowId orig = all.id(i);
    EXPECT_DOUBLE_EQ(all.numeric(i, 2), d.Numeric(orig, 2));
    EXPECT_EQ(all.value(i, 2), d.Value(orig, 2));  // bucket id intact
  }
}

TEST(ExternalSortTest, SealedInputSurfacesSpillCorruption) {
  SimulatedDisk disk(64);  // tiny pages -> guaranteed multi-run merge
  Rng rng(12);
  Dataset d = GenerateUniform(300, {6, 6}, rng);
  auto stored = StoredDataset::Create(&disk, d, "in", /*checksum_pages=*/true);
  ASSERT_TRUE(stored.ok());

  // Corrupt every read of files created *after* the input: exactly the
  // spill runs and intermediate merges the sort itself writes.
  SpillCorruptor faulty(&disk, disk.next_file_id());
  StoredDataset input(&faulty, stored->file(), stored->schema(),
                      stored->num_rows(), /*checksum_pages=*/true);
  auto result = ExternalMultiAttributeSort(input, IdentityOrder(d.schema()),
                                           MemoryBudget{3}, "out");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
  EXPECT_GT(faulty.corrupted_reads(), 0u);
}

TEST(ExternalSortTest, SealedInputSealsSpillsAndOutput) {
  SimulatedDisk disk(64);
  Rng rng(13);
  Dataset d = GenerateUniform(300, {5, 5}, rng);
  auto stored = StoredDataset::Create(&disk, d, "in", /*checksum_pages=*/true);
  ASSERT_TRUE(stored.ok());
  const auto attr_order = IdentityOrder(d.schema());
  auto result = ExternalMultiAttributeSort(*stored, attr_order,
                                           MemoryBudget{3}, "out");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->sorted.checksum_pages());

  // The sealed output must verify clean page by page.
  PagedReaderOptions ro;
  ro.verify_checksums = true;
  PagedReader reader(&disk, nullptr, ro);
  RowBatch all(2, false);
  for (PageId p = 0; p < result->sorted.num_pages(); ++p) {
    ASSERT_TRUE(result->sorted.ReadPageVia(&reader, p, &all).ok());
  }
  ASSERT_EQ(all.size(), 300u);
  EXPECT_TRUE(IsLexSorted(all, attr_order));

  // Unsealed input keeps the unsealed fast path: no footer on the output.
  auto plain = StoredDataset::Create(&disk, d, "in2");
  ASSERT_TRUE(plain.ok());
  auto plain_result = ExternalMultiAttributeSort(*plain, attr_order,
                                                 MemoryBudget{3}, "out2");
  ASSERT_TRUE(plain_result.ok());
  EXPECT_FALSE(plain_result->sorted.checksum_pages());
}

}  // namespace
}  // namespace nmrs
