#include "order/attribute_order.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace nmrs {
namespace {

TEST(AttributeOrderTest, AscendingCardinality) {
  Schema s = Schema::Categorical({50, 2, 7, 3});
  auto order = AscendingCardinalityOrder(s);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<AttrId>{1, 3, 2, 0}));
}

TEST(AttributeOrderTest, AscendingIsStableOnTies) {
  Schema s = Schema::Categorical({5, 5, 2, 5});
  auto order = AscendingCardinalityOrder(s);
  EXPECT_EQ(order, (std::vector<AttrId>{2, 0, 1, 3}));
}

TEST(AttributeOrderTest, DescendingCardinality) {
  Schema s = Schema::Categorical({50, 2, 7, 3});
  auto order = DescendingCardinalityOrder(s);
  EXPECT_EQ(order, (std::vector<AttrId>{0, 2, 3, 1}));
}

TEST(AttributeOrderTest, IdentityOrder) {
  Schema s = Schema::Categorical({4, 4, 4});
  EXPECT_EQ(IdentityOrder(s), (std::vector<AttrId>{0, 1, 2}));
}

TEST(AttributeOrderTest, RandomOrderIsPermutation) {
  Schema s = Schema::Categorical({2, 2, 2, 2, 2, 2, 2, 2});
  Rng rng(1);
  auto order = RandomOrder(s, rng);
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, IdentityOrder(s));
}

}  // namespace
}  // namespace nmrs
