#include <memory>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/disk_view.h"
#include "storage/fault_injection.h"
#include "storage/paged_reader.h"
#include "storage/replica_set.h"

namespace nmrs {
namespace {

Page MakePage(size_t size, uint8_t fill) {
  Page p(size);
  for (size_t i = 0; i < size; ++i) p[i] = fill;
  return p;
}

// A frozen base disk with one file of `pages` pages, byte 0 tagging the
// index, plus one DiskView per requested replica — the standalone analogue
// of what ReplicaSet builds for the engine.
struct ReplicaFixture {
  explicit ReplicaFixture(int pages, int replicas, bool seal = false) {
    file = base.CreateFile("data");
    for (int i = 0; i < pages; ++i) {
      Page p = MakePage(base.page_size(), static_cast<uint8_t>(i));
      if (seal) p.Seal();
      EXPECT_TRUE(base.AppendPage(file, p).ok());
    }
    base.ResetStats();
    for (int r = 0; r < replicas; ++r) {
      views.push_back(std::make_unique<DiskView>(&base));
    }
  }

  SimulatedDisk base;
  FileId file = 0;
  std::vector<std::unique_ptr<DiskView>> views;
};

// ---------------------------------------------------------------------------
// FaultConfig::data_loss_p: the probabilistic bad-sector draw
// ---------------------------------------------------------------------------

TEST(DataLossDrawTest, IsDeterministicAndSeedDependent) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.data_loss_p = 0.2;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  cfg.seed = 6;
  FaultInjector c(cfg);
  int bad = 0;
  bool differs = false;
  for (PageId page = 0; page < 512; ++page) {
    EXPECT_EQ(a.IsBadPage(0, page), b.IsBadPage(0, page));
    differs |= a.IsBadPage(0, page) != c.IsBadPage(0, page);
    bad += a.IsBadPage(0, page) ? 1 : 0;
  }
  EXPECT_TRUE(differs) << "seed does not influence the data-loss draw";
  // 512 draws at p=0.2: expect ~102, accept a generous band.
  EXPECT_GT(bad, 50);
  EXPECT_LT(bad, 180);
}

TEST(DataLossDrawTest, EveryAttemptAndStreamSeesTheSameBadPages) {
  // Bad sectors are a property of the (simulated) medium: FaultyDisk must
  // return kDataLoss for the same pages on every stream and every retry.
  ReplicaFixture fx(64, /*replicas=*/1);
  FaultConfig cfg;
  cfg.seed = 11;
  cfg.data_loss_p = 0.1;
  FaultInjector inj(cfg);
  for (uint64_t stream = 0; stream < 3; ++stream) {
    FaultyDisk disk(fx.views[0].get(), &inj, stream);
    for (PageId page = 0; page < 64; ++page) {
      for (int attempt = 0; attempt < 2; ++attempt) {
        Page out(0);
        const Status s = disk.ReadPage(fx.file, page, &out);
        EXPECT_EQ(s.IsDataLoss(), inj.IsBadPage(fx.file, page))
            << "stream " << stream << " page " << page;
      }
    }
  }
}

TEST(DataLossDrawTest, EnablesFaultConfig) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  cfg.data_loss_p = 1e-3;
  EXPECT_TRUE(cfg.enabled());
}

// ---------------------------------------------------------------------------
// PagedReader page-granular failover
// ---------------------------------------------------------------------------

TEST(PagedReaderFailoverTest, BadPrimaryPageIsServedByTheNextReplica) {
  ReplicaFixture fx(4, /*replicas=*/2);
  FaultConfig cfg;
  cfg.bad_pages.insert({fx.file, 2});
  FaultInjector inj(cfg);
  FaultyDisk primary(fx.views[0].get(), &inj, /*stream=*/0);

  PagedReaderOptions opts;
  opts.failover = {fx.views[1].get()};
  PagedReader reader(&primary, nullptr, opts);

  Page out(0);
  ASSERT_TRUE(reader.ReadPage(fx.file, 2, &out).ok());
  EXPECT_EQ(out[0], 2);  // the replica serves the same frozen bytes
  EXPECT_EQ(reader.failovers(), 1u);
  EXPECT_EQ(reader.current_replica(), 1);

  IoStats io;
  reader.FoldStatsInto(&io);
  EXPECT_EQ(io.failovers, 1u);
  EXPECT_EQ(io.replica_reads[0], 1u);  // the failed primary attempt
  EXPECT_EQ(io.replica_reads[1], 1u);  // the read that served the page
  EXPECT_EQ(io.quarantined_pages, 0u);  // not lost: a replica had it
}

TEST(PagedReaderFailoverTest, FailoverChargesTheReplicaReadToTheQuery) {
  ReplicaFixture fx(4, /*replicas=*/2);
  FaultConfig cfg;
  cfg.bad_pages.insert({fx.file, 0});
  FaultInjector inj(cfg);
  FaultyDisk primary(fx.views[0].get(), &inj, 0);

  PagedReaderOptions opts;
  opts.failover = {fx.views[1].get()};
  PagedReader reader(&primary, nullptr, opts);

  const IoStats primary_before = fx.views[0]->stats();
  Page out(0);
  ASSERT_TRUE(reader.ReadPage(fx.file, 0, &out).ok());

  // The algorithms charge `primary delta + FoldStatsInto`; the replica-1
  // read must appear in the fold (it landed on a disk nobody deltas).
  IoStats io = fx.views[0]->stats() - primary_before;
  reader.FoldStatsInto(&io);
  EXPECT_EQ(io.TotalReads(), 2u);  // failed primary attempt + replica read
  EXPECT_EQ(fx.views[1]->stats().TotalReads(), 1u);
}

TEST(PagedReaderFailoverTest, PreferenceSticksToTheServingReplica) {
  ReplicaFixture fx(8, /*replicas=*/2);
  FaultConfig cfg;
  cfg.bad_pages.insert({fx.file, 0});
  FaultInjector inj(cfg);
  FaultyDisk primary(fx.views[0].get(), &inj, 0);

  PagedReaderOptions opts;
  opts.failover = {fx.views[1].get()};
  PagedReader reader(&primary, nullptr, opts);

  Page out(0);
  ASSERT_TRUE(reader.ReadPage(fx.file, 0, &out).ok());
  ASSERT_EQ(reader.current_replica(), 1);
  // Subsequent reads start on replica 1 and never touch the primary.
  for (PageId p = 1; p < 8; ++p) {
    ASSERT_TRUE(reader.ReadPage(fx.file, p, &out).ok());
    EXPECT_EQ(out[0], static_cast<uint8_t>(p));
  }
  IoStats io;
  reader.FoldStatsInto(&io);
  EXPECT_EQ(io.failovers, 1u);  // only the first page failed over
  EXPECT_EQ(io.replica_reads[0], 1u);
  EXPECT_EQ(io.replica_reads[1], 8u);
}

TEST(PagedReaderFailoverTest, AllReplicasFailingSurfacesDataLoss) {
  ReplicaFixture fx(2, /*replicas=*/3);
  FaultConfig cfg;
  cfg.bad_pages.insert({fx.file, 1});
  // Same bad page on every replica: the page is truly gone.
  FaultInjector inj(cfg);
  FaultyDisk r0(fx.views[0].get(), &inj, 0);
  FaultyDisk r1(fx.views[1].get(), &inj, 0);
  FaultyDisk r2(fx.views[2].get(), &inj, 0);

  QuarantineLog log;
  PagedReaderOptions opts;
  opts.failover = {&r1, &r2};
  opts.quarantine = &log;
  PagedReader reader(&r0, nullptr, opts);

  Page out(0);
  const Status s = reader.ReadPage(fx.file, 1, &out);
  EXPECT_TRUE(s.IsDataLoss()) << s;
  IoStats io;
  reader.FoldStatsInto(&io);
  EXPECT_EQ(io.quarantined_pages, 1u);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(io.replica_reads[0], 1u);
  EXPECT_EQ(io.replica_reads[1], 1u);
  EXPECT_EQ(io.replica_reads[2], 1u);
  // A page read that ends in failure is not a failover — nothing served it.
  EXPECT_EQ(io.failovers, 0u);

  // Page 0 is fine everywhere and is served by the preferred (still 0,
  // nothing succeeded elsewhere) replica.
  ASSERT_TRUE(reader.ReadPage(fx.file, 0, &out).ok());
  EXPECT_EQ(reader.current_replica(), 0);
}

TEST(PagedReaderFailoverTest, ScratchFilesAboveTheLimitNeverFailOver) {
  ReplicaFixture fx(2, /*replicas=*/2);
  // A scratch file created on the primary view only (the real spill
  // situation: scratch exists on no other replica).
  const FileId scratch = fx.views[0]->CreateFile("spill");
  Page sp = MakePage(fx.base.page_size(), 0xAB);
  ASSERT_TRUE(fx.views[0]->AppendPage(scratch, sp).ok());

  FaultConfig cfg;
  cfg.bad_pages.insert({fx.file, 0});
  FaultInjector inj(cfg);
  FaultyDisk primary(fx.views[0].get(), &inj, 0,
                     /*fault_ceiling=*/fx.base.next_file_id());

  PagedReaderOptions opts;
  opts.failover = {fx.views[1].get()};
  opts.failover_limit = fx.base.next_file_id();
  PagedReader reader(&primary, nullptr, opts);

  Page out(0);
  // Scratch read takes the single-disk path: no replica accounting at all.
  ASSERT_TRUE(reader.ReadPage(scratch, 0, &out).ok());
  EXPECT_EQ(out[0], 0xAB);
  IoStats io;
  reader.FoldStatsInto(&io);
  EXPECT_EQ(io.ReplicaReadsTotal(), 0u);

  // Base file reads still fail over.
  ASSERT_TRUE(reader.ReadPage(fx.file, 0, &out).ok());
  EXPECT_EQ(reader.failovers(), 1u);
}

TEST(PagedReaderFailoverTest, ChecksumFailureFailsOverAndHealsThePool) {
  // Replica 0 corrupts every read; with checksums on, the reader must fail
  // over to replica 1 AND leave good bytes in the shared pool frame.
  ReplicaFixture fx(2, /*replicas=*/2, /*seal=*/true);
  BufferPoolOptions popts;
  popts.capacity_pages = 4;
  popts.num_shards = 1;
  BufferPool pool(&fx.base, popts);

  FaultConfig cfg;
  cfg.seed = 13;
  cfg.corrupt_p = 1.0;
  FaultInjector inj(cfg);
  FaultyDisk primary(fx.views[0].get(), &inj, 0);

  PagedReaderOptions opts;
  opts.verify_checksums = true;
  opts.failover = {fx.views[1].get()};
  PagedReader reader(&primary, &pool, opts);

  Page out(0);
  ASSERT_TRUE(reader.ReadPage(fx.file, 0, &out).ok());
  EXPECT_TRUE(out.VerifySeal());
  EXPECT_EQ(reader.failovers(), 1u);
  IoStats io;
  reader.FoldStatsInto(&io);
  EXPECT_GE(io.checksum_failures, 2u);  // primary read + its refetch

  // The pool frame must hold replica 1's good bytes now: a fresh clean
  // reader gets a verified hit without touching any disk.
  DiskView clean(&fx.base);
  PagedReaderOptions vopts;
  vopts.verify_checksums = true;
  PagedReader verifier(&clean, &pool, vopts);
  ASSERT_TRUE(verifier.ReadPage(fx.file, 0, &out).ok());
  EXPECT_TRUE(out.VerifySeal());
  EXPECT_EQ(verifier.cache_stats().hits, 1u);
  EXPECT_EQ(clean.stats().TotalReads(), 0u);
}

TEST(PagedReaderFailoverTest, PersistentTransientsFailOverToo) {
  ReplicaFixture fx(2, /*replicas=*/2);
  FaultConfig cfg;
  cfg.seed = 1;
  cfg.transient_read_p = 1.0;  // replica 0 never completes a read
  FaultInjector inj(cfg);
  FaultyDisk primary(fx.views[0].get(), &inj, 0);

  PagedReaderOptions opts;
  opts.retry.max_attempts = 3;
  opts.failover = {fx.views[1].get()};
  PagedReader reader(&primary, nullptr, opts);

  Page out(0);
  ASSERT_TRUE(reader.ReadPage(fx.file, 0, &out).ok());
  EXPECT_EQ(out[0], 0);
  IoStats io;
  reader.FoldStatsInto(&io);
  EXPECT_EQ(io.failovers, 1u);
  EXPECT_EQ(io.transient_retries, 2u);  // the full budget, spent on r0
  EXPECT_EQ(io.replica_reads[0], 3u);
  EXPECT_EQ(io.replica_reads[1], 1u);
}

TEST(PagedReaderFailoverTest, NoReplicasMeansCountersStayZero) {
  ReplicaFixture fx(4, /*replicas=*/1);
  PagedReader reader(fx.views[0].get());
  Page out(0);
  for (PageId p = 0; p < 4; ++p) {
    ASSERT_TRUE(reader.ReadPage(fx.file, p, &out).ok());
  }
  IoStats io;
  reader.FoldStatsInto(&io);
  EXPECT_EQ(io.failovers, 0u);
  EXPECT_EQ(io.ReplicaReadsTotal(), 0u);
}

// ---------------------------------------------------------------------------
// ReplicaSet
// ---------------------------------------------------------------------------

TEST(ReplicaSetTest, DerivesPerReplicaSeedsWithReplicaZeroVerbatim) {
  FaultConfig tmpl;
  tmpl.seed = 42;
  tmpl.transient_read_p = 0.1;
  const uint64_t base = ResiliencePolicy{}.replica_fault_seed_base;
  const auto configs = ReplicaSet::DeriveConfigs(tmpl, base, 3);
  ASSERT_EQ(configs.size(), 3u);
  EXPECT_EQ(configs[0].seed, 42u);  // replicas=1 reproduces single-disk
  EXPECT_EQ(configs[1].seed, 42u + base + 1);
  EXPECT_EQ(configs[2].seed, 42u + base + 2);
  for (const auto& c : configs) {
    EXPECT_DOUBLE_EQ(c.transient_read_p, 0.1);
  }
}

TEST(ReplicaSetTest, ViewsServeTheSameFrozenBytesPerWorkerAndReplica) {
  ReplicaFixture fx(3, /*replicas=*/0);
  ReplicaSetOptions rso;
  rso.num_replicas = 2;
  rso.num_workers = 2;
  ReplicaSet set(&fx.base, rso);
  EXPECT_FALSE(set.faulted());
  for (int w = 0; w < 2; ++w) {
    for (int r = 0; r < 2; ++r) {
      Page out(0);
      ASSERT_TRUE(set.view(w, r)->ReadPage(fx.file, 1, &out).ok());
      EXPECT_EQ(out[0], 1);
    }
  }
  // Each view charges its own stats; WorkerStats sums a worker's replicas.
  EXPECT_EQ(set.WorkerStats(0).TotalReads(), 2u);
  EXPECT_EQ(set.WorkerStats(1).TotalReads(), 2u);
}

TEST(ReplicaSetTest, MakeQueryDisksWrapsOnlyFaultedReplicas) {
  ReplicaFixture fx(2, /*replicas=*/0);
  ReplicaSetOptions rso;
  rso.num_replicas = 2;
  rso.num_workers = 1;
  FaultConfig dead;
  dead.seed = 7;
  dead.data_loss_p = 1.0;
  rso.faults = {dead, FaultConfig{}};  // replica 0 dead, replica 1 clean
  ReplicaSet set(&fx.base, rso);
  EXPECT_TRUE(set.faulted());
  EXPECT_NE(set.injector(0), nullptr);
  EXPECT_EQ(set.injector(1), nullptr);

  std::vector<std::unique_ptr<FaultyDisk>> wrappers;
  const auto disks = set.MakeQueryDisks(0, /*stream=*/3, &wrappers);
  ASSERT_EQ(disks.size(), 2u);
  ASSERT_EQ(wrappers.size(), 1u);
  EXPECT_EQ(disks[0], wrappers[0].get());
  EXPECT_EQ(disks[1], set.view(0, 1));

  Page out(0);
  EXPECT_TRUE(disks[0]->ReadPage(fx.file, 0, &out).IsDataLoss());
  EXPECT_TRUE(disks[1]->ReadPage(fx.file, 0, &out).ok());
}

TEST(ReplicaSetTest, SingleConfigTemplateFansOutToEveryReplica) {
  ReplicaFixture fx(2, /*replicas=*/0);
  ReplicaSetOptions rso;
  rso.num_replicas = 3;
  rso.num_workers = 1;
  FaultConfig tmpl;
  tmpl.seed = 9;
  tmpl.transient_read_p = 0.2;
  rso.faults = {tmpl};
  ReplicaSet set(&fx.base, rso);
  for (int r = 0; r < 3; ++r) {
    ASSERT_NE(set.injector(r), nullptr) << "replica " << r;
    EXPECT_EQ(set.injector(r)->config().seed,
              ReplicaSet::ReplicaSeed(9, rso.replica_fault_seed_base, r));
  }
  // Derived seeds give genuinely different fault patterns per replica.
  int differs = 0;
  for (PageId page = 0; page < 128; ++page) {
    const bool a =
        set.injector(0)->DecideRead(0, fx.file, page, 0).transient;
    const bool b =
        set.injector(1)->DecideRead(0, fx.file, page, 0).transient;
    differs += a != b ? 1 : 0;
  }
  EXPECT_GT(differs, 0);
}

}  // namespace
}  // namespace nmrs
