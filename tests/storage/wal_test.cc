#include "storage/wal.h"

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace nmrs {
namespace {

WalRecord Insert(uint64_t key, std::vector<uint32_t> values,
                 std::vector<double> numerics = {}) {
  WalRecord rec;
  rec.type = WalRecord::Type::kInsert;
  rec.key = key;
  rec.values = std::move(values);
  rec.numerics = std::move(numerics);
  return rec;
}

WalRecord Delete(uint64_t key) {
  WalRecord rec;
  rec.type = WalRecord::Type::kDelete;
  rec.key = key;
  return rec;
}

// Copies the WAL file page-by-page onto a fresh disk, simulating the
// surviving image after a crash at this instant.
FileId CrashImage(const SimulatedDisk& src, FileId file, SimulatedDisk* dst) {
  const FileId out = dst->CreateFile("crash.wal");
  for (PageId p = 0; p < src.NumPages(file); ++p) {
    const Page* pg = src.PeekPage(file, p);
    EXPECT_NE(pg, nullptr);
    EXPECT_TRUE(dst->AppendPage(out, *pg).ok());
  }
  return out;
}

TEST(WalTest, EmptyLogReplaysEmpty) {
  SimulatedDisk disk;
  WalWriter wal(&disk, "test.wal");
  auto replay = ReplayWal(&disk, wal.file());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->records.empty());
  EXPECT_FALSE(replay->torn_tail);
}

TEST(WalTest, RoundTripsMixedRecords) {
  SimulatedDisk disk;
  WalWriter wal(&disk, "test.wal");
  std::vector<WalRecord> want = {
      Insert(7, {1, 2, 3}, {0.5, 1.5, 2.5}),
      Insert(8, {0, 0, 0}),
      Delete(7),
      Insert(9, {4, 5, 6}),
      Delete(9),
  };
  for (const WalRecord& rec : want) {
    ASSERT_TRUE(wal.Append(rec).ok());
  }
  EXPECT_EQ(wal.num_records(), want.size());
  auto replay = ReplayWal(&disk, wal.file());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(replay->records[i], want[i]) << "record " << i;
  }
}

TEST(WalTest, RejectsOversizedAndMalformedRecords) {
  SimulatedDisk disk;
  WalWriter wal(&disk, "test.wal");
  // A delete must not carry a payload.
  WalRecord bad = Delete(1);
  bad.values = {1, 2};
  EXPECT_EQ(wal.Append(bad).code(), StatusCode::kInvalidArgument);
  // A record larger than one page can never be framed.
  WalRecord huge = Insert(2, std::vector<uint32_t>(1 << 20, 0));
  EXPECT_EQ(wal.Append(huge).code(), StatusCode::kInvalidArgument);
  // The log is still usable afterwards.
  EXPECT_TRUE(wal.Append(Insert(3, {1})).ok());
  auto replay = ReplayWal(&disk, wal.file());
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].key, 3u);
}

// The crash matrix: after every record boundary, the on-disk image must
// replay to exactly the records appended so far — the per-append reseal
// makes each Append() a durability point.
TEST(WalTest, CrashAtEveryRecordBoundaryReplaysExactPrefix) {
  SimulatedDisk disk(1024);  // small pages so the matrix spans many pages
  WalWriter wal(&disk, "test.wal");
  Rng rng(41);
  std::vector<WalRecord> appended;
  constexpr int kRecords = 300;  // spans several pages
  for (int i = 0; i < kRecords; ++i) {
    WalRecord rec;
    if (i % 3 == 2) {
      rec = Delete(static_cast<uint64_t>(i / 3));
    } else {
      std::vector<uint32_t> values(1 + rng.Uniform(8));
      for (uint32_t& v : values) v = static_cast<uint32_t>(rng.Uniform(100));
      rec = Insert(static_cast<uint64_t>(i), std::move(values));
    }
    ASSERT_TRUE(wal.Append(rec).ok());
    appended.push_back(rec);

    SimulatedDisk crash(disk.page_size());
    const FileId image = CrashImage(disk, wal.file(), &crash);
    auto replay = ReplayWal(&crash, image);
    ASSERT_TRUE(replay.ok()) << "after append " << i << ": "
                             << replay.status().ToString();
    EXPECT_FALSE(replay->torn_tail) << "after append " << i;
    ASSERT_EQ(replay->records.size(), appended.size()) << "after append " << i;
    for (size_t r = 0; r < appended.size(); ++r) {
      ASSERT_EQ(replay->records[r], appended[r])
          << "record " << r << " after append " << i;
    }
  }
}

// A torn tail page (crash mid-write) yields the durable prefix plus the
// torn_tail flag; damage to an *earlier* page is unrecoverable corruption.
TEST(WalTest, TornTailYieldsPrefixEarlierDamageIsCorruption) {
  SimulatedDisk disk(1024);
  WalWriter wal(&disk, "test.wal");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(wal.Append(Insert(static_cast<uint64_t>(i), {1, 2})).ok());
  }
  const uint64_t pages = disk.NumPages(wal.file());
  ASSERT_GE(pages, 2u) << "test needs a multi-page log";

  {  // Tear the last page: flip one byte, do not re-seal.
    SimulatedDisk crash(disk.page_size());
    const FileId image = CrashImage(disk, wal.file(), &crash);
    Page torn = *crash.PeekPage(image, pages - 1);
    torn[10] ^= 0xff;
    ASSERT_TRUE(crash.WritePage(image, pages - 1, torn).ok());
    auto replay = ReplayWal(&crash, image);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_TRUE(replay->torn_tail);
    EXPECT_LT(replay->records.size(), 200u);
    // The prefix is intact and in order.
    for (size_t r = 0; r < replay->records.size(); ++r) {
      EXPECT_EQ(replay->records[r].key, r);
    }
  }
  {  // Same damage on page 0: not a crash artifact, hard corruption.
    SimulatedDisk crash(disk.page_size());
    const FileId image = CrashImage(disk, wal.file(), &crash);
    Page torn = *crash.PeekPage(image, 0);
    torn[10] ^= 0xff;
    ASSERT_TRUE(crash.WritePage(image, 0, torn).ok());
    auto replay = ReplayWal(&crash, image);
    EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);
  }
}

}  // namespace
}  // namespace nmrs
