#include "storage/io_stats.h"

#include <gtest/gtest.h>

#include "storage/memory_budget.h"

namespace nmrs {
namespace {

TEST(IoStatsTest, Totals) {
  IoStats s{.seq_reads = 3, .rand_reads = 2, .seq_writes = 5,
            .rand_writes = 1};
  EXPECT_EQ(s.TotalReads(), 5u);
  EXPECT_EQ(s.TotalWrites(), 6u);
  EXPECT_EQ(s.TotalSequential(), 8u);
  EXPECT_EQ(s.TotalRandom(), 3u);
  EXPECT_EQ(s.Total(), 11u);
}

TEST(IoStatsTest, AddAndSubtract) {
  IoStats a{.seq_reads = 10, .rand_reads = 4, .seq_writes = 2,
            .rand_writes = 1};
  IoStats b{.seq_reads = 3, .rand_reads = 1, .seq_writes = 1,
            .rand_writes = 0};
  IoStats sum = b;
  sum += a;
  EXPECT_EQ(sum.seq_reads, 13u);
  IoStats diff = a - b;
  EXPECT_EQ(diff.seq_reads, 7u);
  EXPECT_EQ(diff.rand_reads, 3u);
  EXPECT_EQ(diff.seq_writes, 1u);
  EXPECT_EQ(diff.rand_writes, 1u);
}

TEST(IoStatsTest, ToStringMentionsAllCounters) {
  IoStats s{.seq_reads = 1, .rand_reads = 2, .seq_writes = 3,
            .rand_writes = 4};
  const std::string str = s.ToString();
  EXPECT_NE(str.find("seq_reads=1"), std::string::npos);
  EXPECT_NE(str.find("rand_writes=4"), std::string::npos);
}

TEST(IoCostModelTest, RandomCostsDominate) {
  IoCostModel model;  // defaults: 0.4 ms seq, 8 ms rand
  IoStats seq_heavy{.seq_reads = 100};
  IoStats rand_heavy{.rand_reads = 100};
  EXPECT_LT(model.EstimateMillis(seq_heavy),
            model.EstimateMillis(rand_heavy));
  EXPECT_DOUBLE_EQ(model.EstimateMillis(seq_heavy), 40.0);
  EXPECT_DOUBLE_EQ(model.EstimateMillis(rand_heavy), 800.0);
}

TEST(MemoryBudgetTest, FractionOfDataset) {
  MemoryBudget b = MemoryBudget::FromFraction(0.10, 1000);
  EXPECT_EQ(b.pages, 100u);
  EXPECT_EQ(b.Bytes(32 * 1024), 100u * 32 * 1024);
}

TEST(MemoryBudgetTest, EnforcesMinimum) {
  MemoryBudget b = MemoryBudget::FromFraction(0.01, 10);  // 0.1 page
  EXPECT_EQ(b.pages, 2u);
  MemoryBudget c = MemoryBudget::FromFraction(0.5, 2, 4);
  EXPECT_EQ(c.pages, 4u);
}

}  // namespace
}  // namespace nmrs
