#include "storage/fault_injection.h"

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/disk_view.h"
#include "storage/paged_reader.h"

namespace nmrs {
namespace {

Page MakePage(size_t size, uint8_t fill) {
  Page p(size);
  for (size_t i = 0; i < size; ++i) p[i] = fill;
  return p;
}

// A base disk with one file of `pages` pages, byte 0 tagging the index.
// Pages are sealed iff `seal` so checksum tests can share the fixture.
struct Fixture {
  explicit Fixture(int pages, bool seal = false) {
    file = base.CreateFile("data");
    for (int i = 0; i < pages; ++i) {
      Page p = MakePage(base.page_size(), static_cast<uint8_t>(i));
      if (seal) p.Seal();
      EXPECT_TRUE(base.AppendPage(file, p).ok());
    }
    base.ResetStats();
  }

  SimulatedDisk base;
  FileId file = 0;
};

// ---------------------------------------------------------------------------
// Page seal / verify
// ---------------------------------------------------------------------------

TEST(PageSealTest, SealThenVerifyRoundTrips) {
  Page p = MakePage(512, 0x5A);
  p.Seal();
  EXPECT_TRUE(p.VerifySeal());
}

TEST(PageSealTest, AnyByteFlipFailsVerification) {
  Page p = MakePage(128, 0x33);
  p.Seal();
  for (size_t i = 0; i < p.size(); ++i) {
    p[i] ^= 0x01;  // includes flips inside the footer itself
    EXPECT_FALSE(p.VerifySeal()) << "flip at byte " << i;
    p[i] ^= 0x01;
  }
  EXPECT_TRUE(p.VerifySeal());
}

TEST(PageSealTest, ResealAfterEditIsValid) {
  Page p = MakePage(128, 0);
  p.Seal();
  p[3] = 77;
  EXPECT_FALSE(p.VerifySeal());
  p.Seal();
  EXPECT_TRUE(p.VerifySeal());
}

// ---------------------------------------------------------------------------
// FaultInjector: the pure-function oracle
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DecisionsAreDeterministic) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.transient_read_p = 0.3;
  cfg.corrupt_p = 0.2;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  for (uint64_t stream = 0; stream < 4; ++stream) {
    for (PageId page = 0; page < 64; ++page) {
      for (uint64_t attempt = 0; attempt < 3; ++attempt) {
        const ReadFault fa = a.DecideRead(stream, 1, page, attempt);
        const ReadFault fb = b.DecideRead(stream, 1, page, attempt);
        EXPECT_EQ(fa.transient, fb.transient);
        EXPECT_EQ(fa.corrupt, fb.corrupt);
        EXPECT_EQ(fa.corrupt_offset_raw, fb.corrupt_offset_raw);
        EXPECT_EQ(fa.corrupt_xor, fb.corrupt_xor);
      }
    }
  }
}

TEST(FaultInjectorTest, SeedAndStreamChangeThePattern) {
  FaultConfig cfg;
  cfg.transient_read_p = 0.5;
  cfg.seed = 1;
  FaultInjector seed1(cfg);
  cfg.seed = 2;
  FaultInjector seed2(cfg);

  auto pattern = [](const FaultInjector& inj, uint64_t stream) {
    std::vector<bool> bits;
    for (PageId page = 0; page < 256; ++page) {
      bits.push_back(inj.DecideRead(stream, 0, page, 0).transient);
    }
    return bits;
  };
  EXPECT_NE(pattern(seed1, 0), pattern(seed2, 0));   // seed matters
  EXPECT_NE(pattern(seed1, 0), pattern(seed1, 1));   // stream partitions
  EXPECT_EQ(pattern(seed1, 0), pattern(seed1, 0));   // and is stable
}

TEST(FaultInjectorTest, RatesRoughlyMatchProbabilities) {
  FaultConfig cfg;
  cfg.seed = 99;
  cfg.transient_read_p = 0.1;
  FaultInjector inj(cfg);
  int transients = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (inj.DecideRead(0, 0, static_cast<PageId>(i), 0).transient) {
      ++transients;
    }
  }
  // 0.1 +- generous slack; a broken mixer would be far outside.
  EXPECT_GT(transients, kTrials / 20);
  EXPECT_LT(transients, kTrials / 5);
}

TEST(FaultInjectorTest, ZeroProbabilitiesNeverFault) {
  FaultConfig cfg;
  cfg.seed = 5;
  FaultInjector inj(cfg);
  EXPECT_FALSE(cfg.enabled());
  for (PageId page = 0; page < 100; ++page) {
    const ReadFault f = inj.DecideRead(0, 0, page, 0);
    EXPECT_FALSE(f.transient);
    EXPECT_FALSE(f.corrupt);
  }
}

TEST(FaultInjectorTest, CorruptXorIsNeverZero) {
  FaultConfig cfg;
  cfg.seed = 3;
  cfg.corrupt_p = 1.0;
  FaultInjector inj(cfg);
  for (PageId page = 0; page < 200; ++page) {
    const ReadFault f = inj.DecideRead(0, 0, page, 0);
    ASSERT_TRUE(f.corrupt);
    EXPECT_NE(f.corrupt_xor, 0);  // a zero mask would be a no-op
  }
}

TEST(FaultConfigTest, EnabledReflectsAnyFaultSource) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  cfg.transient_read_p = 0.01;
  EXPECT_TRUE(cfg.enabled());
  cfg = FaultConfig{};
  cfg.corrupt_p = 0.01;
  EXPECT_TRUE(cfg.enabled());
  cfg = FaultConfig{};
  cfg.bad_pages.insert({0, 3});
  EXPECT_TRUE(cfg.enabled());
}

// ---------------------------------------------------------------------------
// FaultyDisk decorator
// ---------------------------------------------------------------------------

TEST(FaultyDiskTest, PassThroughWhenConfigInert) {
  Fixture fx(4);
  FaultInjector inj(FaultConfig{});
  FaultyDisk disk(&fx.base, &inj, 0);
  Page out(0);
  for (PageId p = 0; p < 4; ++p) {
    ASSERT_TRUE(disk.ReadPage(fx.file, p, &out).ok());
    EXPECT_EQ(out[0], static_cast<uint8_t>(p));
  }
  // IO accounting lives in the wrapped disk, unchanged by wrapping.
  EXPECT_EQ(disk.stats().TotalReads(), 4u);
  EXPECT_EQ(&disk.stats(), &fx.base.stats());
}

TEST(FaultyDiskTest, BadPageAlwaysReturnsDataLossButChargesIo) {
  Fixture fx(4);
  FaultConfig cfg;
  cfg.bad_pages.insert({fx.file, 2});
  FaultInjector inj(cfg);
  FaultyDisk disk(&fx.base, &inj, 0);
  Page out(0);
  for (int attempt = 0; attempt < 3; ++attempt) {
    Status s = disk.ReadPage(fx.file, 2, &out);
    EXPECT_TRUE(s.IsDataLoss()) << s;
    EXPECT_TRUE(s.IsStorageFault());
    EXPECT_NE(s.message().find("'data'"), std::string::npos) << s;
    EXPECT_NE(s.message().find("page 2"), std::string::npos) << s;
  }
  EXPECT_EQ(fx.base.stats().TotalReads(), 3u);  // the arm still moved
  ASSERT_TRUE(disk.ReadPage(fx.file, 1, &out).ok());  // neighbors fine
}

TEST(FaultyDiskTest, TransientFaultsAdvanceWithAttemptNumber) {
  Fixture fx(64);
  FaultConfig cfg;
  cfg.seed = 11;
  cfg.transient_read_p = 0.5;
  FaultInjector inj(cfg);

  // Two fresh decorators over the same base replay the identical fault
  // sequence, because attempts are counted per instance.
  auto run = [&](int reads_per_page) {
    FaultyDisk disk(&fx.base, &inj, 0);
    std::vector<bool> outcome;
    Page out(0);
    for (PageId p = 0; p < 64; ++p) {
      for (int r = 0; r < reads_per_page; ++r) {
        outcome.push_back(disk.ReadPage(fx.file, p, &out).ok());
      }
    }
    return outcome;
  };
  const auto first = run(2);
  const auto second = run(2);
  EXPECT_EQ(first, second);
  // With p = 0.5 over 128 attempts, both outcomes must occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(FaultyDiskTest, CorruptionFlipsExactlyOneByte) {
  Fixture fx(1);
  FaultConfig cfg;
  cfg.seed = 4;
  cfg.corrupt_p = 1.0;
  FaultInjector inj(cfg);
  FaultyDisk disk(&fx.base, &inj, 0);
  Page clean(0);
  ASSERT_TRUE(fx.base.ReadPage(fx.file, 0, &clean).ok());
  Page out(0);
  ASSERT_TRUE(disk.ReadPage(fx.file, 0, &out).ok());  // silently corrupted
  int diffs = 0;
  for (size_t i = 0; i < clean.size(); ++i) diffs += clean[i] != out[i];
  EXPECT_EQ(diffs, 1);
}

TEST(FaultyDiskTest, WorksOverADiskView) {
  // The engine wraps each worker's DiskView; faults must apply there and
  // IO must charge the view, not the base.
  Fixture fx(4);
  FaultConfig cfg;
  cfg.bad_pages.insert({fx.file, 0});
  FaultInjector inj(cfg);
  DiskView view(&fx.base);
  FaultyDisk disk(&view, &inj, 0);
  Page out(0);
  EXPECT_TRUE(disk.ReadPage(fx.file, 0, &out).IsDataLoss());
  EXPECT_TRUE(disk.ReadPage(fx.file, 1, &out).ok());
  EXPECT_EQ(view.stats().TotalReads(), 2u);
  EXPECT_EQ(fx.base.stats().TotalReads(), 0u);
}

// ---------------------------------------------------------------------------
// RetryPolicy / QuarantineLog
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, BackoffDoublesByDefault) {
  RetryPolicy policy;
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(1), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(2), 4.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(3), 8.0);
  policy.backoff_millis = 1.0;
  policy.backoff_multiplier = 3.0;
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(3), 9.0);
}

TEST(QuarantineLogTest, DeduplicatesAndSorts) {
  QuarantineLog log;
  EXPECT_TRUE(log.Report(2, 7));
  EXPECT_TRUE(log.Report(1, 9));
  EXPECT_FALSE(log.Report(2, 7));  // duplicate
  EXPECT_EQ(log.size(), 2u);
  const auto pages = log.Pages();
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0], (std::pair<FileId, PageId>{1, 9}));
  EXPECT_EQ(pages[1], (std::pair<FileId, PageId>{2, 7}));
}

TEST(QuarantineLogTest, ConcurrentReportsAreSafe) {
  QuarantineLog log;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, t] {
      for (PageId p = 0; p < 100; ++p) {
        log.Report(static_cast<FileId>(t % 2), p);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.size(), 200u);  // 2 files x 100 pages, duplicates folded
}

// ---------------------------------------------------------------------------
// PagedReader fault policy
// ---------------------------------------------------------------------------

TEST(PagedReaderFaultTest, RetriesTransientsAndChargesModeledBackoff) {
  Fixture fx(8);
  // Find a page whose attempt-0 read faults but attempt 1 succeeds.
  FaultConfig cfg;
  cfg.seed = 21;
  cfg.transient_read_p = 0.4;
  FaultInjector inj(cfg);
  PageId flaky = 0;
  bool found = false;
  for (PageId p = 0; p < 8 && !found; ++p) {
    if (inj.DecideRead(0, fx.file, p, 0).transient &&
        !inj.DecideRead(0, fx.file, p, 1).transient) {
      flaky = p;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "seed produced no 1-retry page; pick another seed";

  FaultyDisk disk(&fx.base, &inj, 0);
  PagedReaderOptions opts;
  opts.retry.max_attempts = 3;
  PagedReader reader(&disk, nullptr, opts);
  Page out(0);
  ASSERT_TRUE(reader.ReadPage(fx.file, flaky, &out).ok());
  EXPECT_EQ(out[0], static_cast<uint8_t>(flaky));
  IoStats io;
  reader.FoldStatsInto(&io);
  EXPECT_EQ(io.transient_retries, 1u);
  EXPECT_EQ(io.quarantined_pages, 0u);
  EXPECT_DOUBLE_EQ(reader.modeled_backoff_millis(),
                   opts.retry.BackoffMillis(1));
}

TEST(PagedReaderFaultTest, ExhaustedRetriesBecomeDataLossAndQuarantine) {
  Fixture fx(2);
  FaultConfig cfg;
  cfg.bad_pages.insert({fx.file, 1});
  FaultInjector inj(cfg);
  FaultyDisk disk(&fx.base, &inj, 0);
  QuarantineLog log;
  PagedReaderOptions opts;
  opts.retry.max_attempts = 4;
  opts.quarantine = &log;
  PagedReader reader(&disk, nullptr, opts);
  Page out(0);
  Status s = reader.ReadPage(fx.file, 1, &out);
  EXPECT_TRUE(s.IsDataLoss()) << s;
  IoStats io;
  reader.FoldStatsInto(&io);
  // kDataLoss is permanent: no retries were spent on it.
  EXPECT_EQ(io.transient_retries, 0u);
  EXPECT_EQ(io.quarantined_pages, 1u);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.Pages()[0], (std::pair<FileId, PageId>{fx.file, 1}));
}

TEST(PagedReaderFaultTest, AllAttemptsTransientConvertsToDataLoss) {
  Fixture fx(2);
  FaultConfig cfg;
  cfg.seed = 1;
  cfg.transient_read_p = 1.0;  // every attempt fails
  FaultInjector inj(cfg);
  FaultyDisk disk(&fx.base, &inj, 0);
  PagedReaderOptions opts;
  opts.retry.max_attempts = 3;
  PagedReader reader(&disk, nullptr, opts);
  Page out(0);
  Status s = reader.ReadPage(fx.file, 0, &out);
  EXPECT_TRUE(s.IsDataLoss()) << s;
  EXPECT_NE(s.message().find("after 3 attempts"), std::string::npos) << s;
  IoStats io;
  reader.FoldStatsInto(&io);
  EXPECT_EQ(io.transient_retries, 2u);  // attempts 1 and 2
  EXPECT_EQ(io.quarantined_pages, 1u);
  EXPECT_DOUBLE_EQ(reader.modeled_backoff_millis(),
                   opts.retry.BackoffMillis(1) + opts.retry.BackoffMillis(2));
}

TEST(PagedReaderFaultTest, ChecksumCatchesSilentCorruption) {
  Fixture fx(4, /*seal=*/true);
  FaultConfig cfg;
  cfg.seed = 13;
  cfg.corrupt_p = 1.0;  // every read corrupts: the refetch fails too
  FaultInjector inj(cfg);
  FaultyDisk disk(&fx.base, &inj, 0);
  PagedReaderOptions opts;
  opts.verify_checksums = true;
  PagedReader reader(&disk, nullptr, opts);
  Page out(0);
  Status s = reader.ReadPage(fx.file, 0, &out);
  EXPECT_TRUE(s.IsCorruption()) << s;
  EXPECT_NE(s.message().find("checksum mismatch"), std::string::npos);
  IoStats io;
  reader.FoldStatsInto(&io);
  EXPECT_EQ(io.checksum_failures, 2u);  // original + refetch
  EXPECT_EQ(io.quarantined_pages, 1u);
}

TEST(PagedReaderFaultTest, WithoutChecksumsCorruptionIsSilent) {
  Fixture fx(1, /*seal=*/true);
  FaultConfig cfg;
  cfg.seed = 13;
  cfg.corrupt_p = 1.0;
  FaultInjector inj(cfg);
  FaultyDisk disk(&fx.base, &inj, 0);
  PagedReader reader(&disk);  // verify off: the read "succeeds"
  Page out(0);
  EXPECT_TRUE(reader.ReadPage(fx.file, 0, &out).ok());
  EXPECT_FALSE(out.VerifySeal());  // ... with bad bytes
}

TEST(PagedReaderFaultTest, PoolEvictAndRefetchHealsAPoisonedFrame) {
  // A corrupted miss fetch lands in the shared pool; the next verified read
  // must evict the frame, refetch clean bytes, and succeed.
  Fixture fx(2, /*seal=*/true);
  BufferPoolOptions popts;
  popts.capacity_pages = 4;
  popts.num_shards = 1;
  BufferPool pool(&fx.base, popts);

  // Poison: read page 0 through a corrupting reader WITHOUT verification,
  // so the bad bytes are cached.
  FaultConfig cfg;
  cfg.seed = 13;
  cfg.corrupt_p = 1.0;
  FaultInjector inj(cfg);
  FaultyDisk faulty(&fx.base, &inj, 0);
  PagedReader poisoner(&faulty, &pool);
  Page out(0);
  ASSERT_TRUE(poisoner.ReadPage(fx.file, 0, &out).ok());
  ASSERT_FALSE(out.VerifySeal());

  // Heal: a verifying reader over the CLEAN disk hits the poisoned frame,
  // fails the checksum, evicts, refetches clean bytes and succeeds.
  PagedReaderOptions vopts;
  vopts.verify_checksums = true;
  PagedReader healer(&fx.base, &pool, vopts);
  ASSERT_TRUE(healer.ReadPage(fx.file, 0, &out).ok());
  EXPECT_TRUE(out.VerifySeal());
  IoStats io;
  healer.FoldStatsInto(&io);
  EXPECT_EQ(io.checksum_failures, 1u);
  EXPECT_EQ(io.quarantined_pages, 0u);
  // And the pool now serves the clean bytes to everyone.
  Page again(0);
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 0, &again).ok());
  EXPECT_TRUE(again.VerifySeal());
}

TEST(BufferPoolEvictTest, EvictDropsResidentUnpinnedFramesOnly) {
  Fixture fx(3);
  BufferPoolOptions popts;
  popts.capacity_pages = 4;
  popts.num_shards = 1;
  BufferPool pool(&fx.base, popts);
  Page out(0);
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 0, &out).ok());
  EXPECT_TRUE(pool.Evict(fx.file, 0));
  EXPECT_FALSE(pool.Evict(fx.file, 0));  // already gone
  EXPECT_FALSE(pool.Evict(fx.file, 2));  // never cached
  auto pinned = pool.Pin(&fx.base, fx.file, 1);
  ASSERT_TRUE(pinned.ok());
  EXPECT_FALSE(pool.Evict(fx.file, 1));  // pinned frames stay
  pinned->Release();
  EXPECT_TRUE(pool.Evict(fx.file, 1));
}

}  // namespace
}  // namespace nmrs
