#include "storage/disk.h"

#include <gtest/gtest.h>

namespace nmrs {
namespace {

Page MakePage(size_t size, uint8_t fill) {
  Page p(size);
  for (size_t i = 0; i < size; ++i) p[i] = fill;
  return p;
}

TEST(SimulatedDiskTest, CreateWriteReadRoundTrip) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("data");
  ASSERT_TRUE(disk.AppendPage(f, MakePage(64, 0xAB)).ok());
  Page out(64);
  ASSERT_TRUE(disk.ReadPage(f, 0, &out).ok());
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(out[i], 0xAB);
}

TEST(SimulatedDiskTest, ReadMissingFileFails) {
  SimulatedDisk disk(64);
  Page out(64);
  Status s = disk.ReadPage(99, 0, &out);
  EXPECT_TRUE(s.IsNotFound());
  // The two "nothing there" cases are distinguishable from the message
  // alone: a missing file names the id and the page being read...
  EXPECT_NE(s.message().find("99"), std::string::npos) << s;
  EXPECT_NE(s.message().find("reading page 0"), std::string::npos) << s;
}

TEST(SimulatedDiskTest, ReadPastEndFails) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("data");
  Page out(64);
  Status s = disk.ReadPage(f, 7, &out);
  EXPECT_TRUE(s.IsOutOfRange());
  // ... while a short file names the file, the page asked for, and the
  // page count, so "file unknown" never masquerades as "file too short".
  EXPECT_NE(s.message().find("'data'"), std::string::npos) << s;
  EXPECT_NE(s.message().find("page 7 of 0"), std::string::npos) << s;
}

TEST(SimulatedDiskTest, PagesOfDistinguishesMissingFromEmpty) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("data");
  auto missing = disk.PagesOf(99);
  EXPECT_TRUE(missing.status().IsNotFound());
  auto empty = disk.PagesOf(f);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, 0u);
  ASSERT_TRUE(disk.AppendPage(f, MakePage(64, 0)).ok());
  EXPECT_EQ(*disk.PagesOf(f), 1u);
}

TEST(SimulatedDiskTest, FileNameResolvesKnownAndUnknownIds) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("servers");
  EXPECT_EQ(disk.FileName(f), "servers");
  EXPECT_EQ(disk.FileName(1234), "<unknown file 1234>");
}

TEST(SimulatedDiskTest, WriteWrongPageSizeFails) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("data");
  EXPECT_TRUE(disk.WritePage(f, 0, MakePage(32, 0)).IsInvalidArgument());
}

TEST(SimulatedDiskTest, WriteCreatingHoleFails) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("data");
  EXPECT_TRUE(disk.WritePage(f, 3, MakePage(64, 0)).IsOutOfRange());
}

TEST(SimulatedDiskTest, SequentialReadsClassifiedSequential) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("data");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(disk.AppendPage(f, MakePage(64, i)).ok());
  }
  disk.ResetStats();
  disk.InvalidateArmPosition();
  Page out(64);
  for (PageId p = 0; p < 5; ++p) ASSERT_TRUE(disk.ReadPage(f, p, &out).ok());
  // First read is random (arm position unknown), rest sequential.
  EXPECT_EQ(disk.stats().rand_reads, 1u);
  EXPECT_EQ(disk.stats().seq_reads, 4u);
}

TEST(SimulatedDiskTest, BackwardReadIsRandom) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("data");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(disk.AppendPage(f, MakePage(64, i)).ok());
  }
  disk.ResetStats();
  Page out(64);
  ASSERT_TRUE(disk.ReadPage(f, 2, &out).ok());
  ASSERT_TRUE(disk.ReadPage(f, 1, &out).ok());
  ASSERT_TRUE(disk.ReadPage(f, 0, &out).ok());
  EXPECT_EQ(disk.stats().rand_reads, 3u);
  EXPECT_EQ(disk.stats().seq_reads, 0u);
}

TEST(SimulatedDiskTest, SwitchingFilesIsRandom) {
  SimulatedDisk disk(64);
  FileId a = disk.CreateFile("a");
  FileId b = disk.CreateFile("b");
  ASSERT_TRUE(disk.AppendPage(a, MakePage(64, 1)).ok());
  ASSERT_TRUE(disk.AppendPage(a, MakePage(64, 2)).ok());
  ASSERT_TRUE(disk.AppendPage(b, MakePage(64, 3)).ok());
  disk.ResetStats();
  Page out(64);
  ASSERT_TRUE(disk.ReadPage(a, 0, &out).ok());  // random (fresh)
  ASSERT_TRUE(disk.ReadPage(b, 0, &out).ok());  // random (file switch)
  ASSERT_TRUE(disk.ReadPage(a, 1, &out).ok());  // random (file switch back)
  EXPECT_EQ(disk.stats().rand_reads, 3u);
}

TEST(SimulatedDiskTest, AppendAfterReadContinuesSequentially) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("data");
  ASSERT_TRUE(disk.AppendPage(f, MakePage(64, 0)).ok());  // page 0
  disk.ResetStats();
  ASSERT_TRUE(disk.AppendPage(f, MakePage(64, 1)).ok());  // page 1: seq
  EXPECT_EQ(disk.stats().seq_writes, 1u);
  EXPECT_EQ(disk.stats().rand_writes, 0u);
}

TEST(SimulatedDiskTest, OverwriteExistingPage) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("data");
  ASSERT_TRUE(disk.AppendPage(f, MakePage(64, 1)).ok());
  ASSERT_TRUE(disk.WritePage(f, 0, MakePage(64, 9)).ok());
  Page out(64);
  ASSERT_TRUE(disk.ReadPage(f, 0, &out).ok());
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(disk.NumPages(f), 1u);
}

TEST(SimulatedDiskTest, DeleteFileInvalidatesId) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("data");
  EXPECT_TRUE(disk.FileExists(f));
  ASSERT_TRUE(disk.DeleteFile(f).ok());
  EXPECT_FALSE(disk.FileExists(f));
  EXPECT_TRUE(disk.DeleteFile(f).IsNotFound());
}

TEST(SimulatedDiskTest, TruncateKeepsIdValid) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("data");
  ASSERT_TRUE(disk.AppendPage(f, MakePage(64, 1)).ok());
  ASSERT_TRUE(disk.TruncateFile(f).ok());
  EXPECT_TRUE(disk.FileExists(f));
  EXPECT_EQ(disk.NumPages(f), 0u);
}

TEST(SimulatedDiskTest, TotalPagesAcrossFiles) {
  SimulatedDisk disk(64);
  FileId a = disk.CreateFile("a");
  FileId b = disk.CreateFile("b");
  ASSERT_TRUE(disk.AppendPage(a, MakePage(64, 0)).ok());
  ASSERT_TRUE(disk.AppendPage(b, MakePage(64, 0)).ok());
  ASSERT_TRUE(disk.AppendPage(b, MakePage(64, 0)).ok());
  EXPECT_EQ(disk.TotalPages(), 3u);
}

TEST(SimulatedDiskTest, InvalidateArmMakesNextAccessRandom) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("data");
  ASSERT_TRUE(disk.AppendPage(f, MakePage(64, 0)).ok());
  ASSERT_TRUE(disk.AppendPage(f, MakePage(64, 1)).ok());
  disk.ResetStats();
  Page out(64);
  ASSERT_TRUE(disk.ReadPage(f, 0, &out).ok());
  disk.InvalidateArmPosition();
  ASSERT_TRUE(disk.ReadPage(f, 1, &out).ok());  // would be seq otherwise
  EXPECT_EQ(disk.stats().rand_reads, 2u);
}

}  // namespace
}  // namespace nmrs
