#include "storage/buffer_pool.h"

#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "storage/disk.h"
#include "storage/disk_view.h"
#include "storage/paged_reader.h"

namespace nmrs {
namespace {

// A base disk with one file of `pages` pages, each page tagged with its
// index in byte 0 so reads can be verified.
struct Fixture {
  explicit Fixture(int pages) {
    file = base.CreateFile("data");
    Page p(base.page_size());
    for (int i = 0; i < pages; ++i) {
      p[0] = static_cast<uint8_t>(i);
      EXPECT_TRUE(base.AppendPage(file, p).ok());
    }
    base.ResetStats();
  }

  SimulatedDisk base;
  FileId file = 0;
};

BufferPoolOptions SingleShard(uint64_t capacity) {
  BufferPoolOptions o;
  o.capacity_pages = capacity;
  o.num_shards = 1;  // deterministic LRU order for the eviction tests
  return o;
}

TEST(BufferPoolTest, HitsServeFromMemoryAndOnlyMissesChargeDisk) {
  Fixture fx(4);
  BufferPool pool(&fx.base, SingleShard(4));
  Page out(0);
  for (int round = 0; round < 3; ++round) {
    for (PageId p = 0; p < 4; ++p) {
      ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, p, &out).ok());
      EXPECT_EQ(out[0], static_cast<uint8_t>(p));
    }
  }
  // 12 lookups: 4 cold misses, 8 hits; the disk saw only the misses.
  const CacheStats s = pool.stats();
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.hits, 8u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_DOUBLE_EQ(s.HitRatio(), 8.0 / 12.0);
  EXPECT_EQ(fx.base.stats().TotalReads(), 4u);
  EXPECT_EQ(pool.PagesCached(), 4u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsedFirst) {
  Fixture fx(4);
  BufferPool pool(&fx.base, SingleShard(3));
  Page out(0);
  // Fill: LRU order (oldest first) is 0, 1, 2.
  for (PageId p = 0; p < 3; ++p) {
    ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, p, &out).ok());
  }
  // Touch 0 so 1 becomes the LRU victim.
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 0, &out).ok());
  // Miss on 3 evicts 1.
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 3, &out).ok());
  EXPECT_EQ(pool.stats().evictions, 1u);
  const uint64_t reads_before = fx.base.stats().TotalReads();
  // 0, 2, 3 are resident; 1 must miss again.
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 0, &out).ok());
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 2, &out).ok());
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 3, &out).ok());
  EXPECT_EQ(fx.base.stats().TotalReads(), reads_before);
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 1, &out).ok());
  EXPECT_EQ(fx.base.stats().TotalReads(), reads_before + 1);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  Fixture fx(4);
  BufferPool pool(&fx.base, SingleShard(2));
  auto pinned = pool.Pin(&fx.base, fx.file, 0);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->page()[0], 0u);
  Page out(0);
  // 1 enters, then 2 and 3 each force an eviction — which must never pick
  // the pinned page 0.
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 1, &out).ok());
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 2, &out).ok());
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 3, &out).ok());
  EXPECT_EQ(pool.stats().evictions, 2u);
  const uint64_t reads_before = fx.base.stats().TotalReads();
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 0, &out).ok());  // hit
  EXPECT_EQ(fx.base.stats().TotalReads(), reads_before);
  pinned->Release();
  // Unpinned now: a stream of misses may evict it again.
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 1, &out).ok());
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 2, &out).ok());
  ASSERT_TRUE(pool.ReadThrough(&fx.base, fx.file, 0, &out).ok());
  EXPECT_GT(fx.base.stats().TotalReads(), reads_before);
}

TEST(BufferPoolTest, AllPinnedShardReturnsResourceExhausted) {
  Fixture fx(4);
  BufferPool pool(&fx.base, SingleShard(2));
  auto a = pool.Pin(&fx.base, fx.file, 0);
  auto b = pool.Pin(&fx.base, fx.file, 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // A further Pin of an absent page has no frame to claim: Status, not a
  // crash.
  auto blocked = pool.Pin(&fx.base, fx.file, 2);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kResourceExhausted);
  // ReadThrough degrades to an uncached read instead: it succeeds, charges
  // the disk, and retains nothing.
  Page out(0);
  const uint64_t reads_before = fx.base.stats().TotalReads();
  EXPECT_TRUE(pool.ReadThrough(&fx.base, fx.file, 2, &out).ok());
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(fx.base.stats().TotalReads(), reads_before + 1);
  EXPECT_EQ(pool.PagesCached(), 2u);
  // Re-pinning an already-resident page still works (no frame needed).
  auto again = pool.Pin(&fx.base, fx.file, 0);
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().pinned_peak, 3u);
  // Releasing a pin frees a frame for the blocked pin.
  b->Release();
  EXPECT_TRUE(pool.Pin(&fx.base, fx.file, 2).ok());
}

TEST(BufferPoolTest, ReadErrorsPropagateAndNothingIsCached) {
  Fixture fx(2);
  BufferPool pool(&fx.base, SingleShard(4));
  Page out(0);
  EXPECT_FALSE(pool.ReadThrough(&fx.base, fx.file, 99, &out).ok());
  EXPECT_EQ(pool.PagesCached(), 0u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, OnlyBaseFilesAreCacheable) {
  Fixture fx(2);
  BufferPool pool(&fx.base, SingleShard(4));
  EXPECT_TRUE(pool.Caches(fx.file));
  // Files created after the pool — base or view-local scratch — bypass it:
  // per-view scratch ids may collide across views, so caching them would
  // alias distinct data.
  const FileId late = fx.base.CreateFile("late");
  EXPECT_FALSE(pool.Caches(late));
  DiskView view(&fx.base);
  const FileId scratch = view.CreateFile("scratch");
  EXPECT_FALSE(pool.Caches(scratch));
}

TEST(BufferPoolTest, SingleFlightAcrossViewsChargesOneMissPerPage) {
  Fixture fx(3);
  BufferPool pool(&fx.base, SingleShard(3));
  DiskView v1(&fx.base);
  DiskView v2(&fx.base);
  PagedReader r1(&v1, &pool);
  PagedReader r2(&v2, &pool);
  Page out(0);
  for (PageId p = 0; p < 3; ++p) {
    ASSERT_TRUE(r1.ReadPage(fx.file, p, &out).ok());
    ASSERT_TRUE(r2.ReadPage(fx.file, p, &out).ok());
  }
  // r1 misses, r2 hits; misses were charged to r1's view only.
  EXPECT_EQ(r1.cache_stats().misses, 3u);
  EXPECT_EQ(r1.cache_stats().hits, 0u);
  EXPECT_EQ(r2.cache_stats().misses, 0u);
  EXPECT_EQ(r2.cache_stats().hits, 3u);
  EXPECT_EQ(v1.stats().TotalReads(), 3u);
  EXPECT_EQ(v2.stats().TotalReads(), 0u);
  EXPECT_EQ(fx.base.stats().TotalReads(), 0u);  // views charge themselves
}

TEST(PagedReaderTest, WithoutPoolIsPlainDiskRead) {
  Fixture fx(2);
  PagedReader reader(&fx.base);
  EXPECT_FALSE(reader.caching());
  Page out(0);
  ASSERT_TRUE(reader.ReadPage(fx.file, 0, &out).ok());
  EXPECT_EQ(fx.base.stats().TotalReads(), 1u);
  EXPECT_EQ(reader.cache_stats().Lookups(), 0u);
}

TEST(PagedReaderTest, ScratchReadsBypassThePool) {
  Fixture fx(2);
  BufferPool pool(&fx.base, SingleShard(4));
  DiskView view(&fx.base);
  const FileId scratch = view.CreateFile("scratch");
  Page p(view.page_size());
  ASSERT_TRUE(view.AppendPage(scratch, p).ok());
  PagedReader reader(&view, &pool);
  Page out(0);
  ASSERT_TRUE(reader.ReadPage(scratch, 0, &out).ok());
  ASSERT_TRUE(reader.ReadPage(scratch, 0, &out).ok());
  EXPECT_EQ(reader.cache_stats().Lookups(), 0u);  // never routed to pool
  EXPECT_EQ(view.stats().TotalReads(), 2u);       // both went to the view
}

TEST(BufferPoolTest, CapacitySplitsAcrossShardsExactly) {
  Fixture fx(2);
  BufferPoolOptions opts;
  opts.capacity_pages = 10;
  opts.num_shards = 4;
  BufferPool pool(&fx.base, opts);
  EXPECT_EQ(pool.capacity_pages(), 10u);
  EXPECT_EQ(pool.num_shards(), 4u);
  // Shards are clamped to capacity.
  BufferPoolOptions tiny;
  tiny.capacity_pages = 2;
  tiny.num_shards = 8;
  BufferPool small(&fx.base, tiny);
  EXPECT_EQ(small.num_shards(), 2u);
}

TEST(BufferPoolTest, StatsFoldIntoIoStats) {
  Fixture fx(3);
  BufferPool pool(&fx.base, SingleShard(2));
  PagedReader reader(&fx.base, &pool);
  Page out(0);
  // 0,1 miss; 0,1 hit; 2 misses and evicts; a cyclic scan would instead
  // thrash a too-small LRU and never hit (see docs/CACHING.md).
  for (PageId p : {0u, 1u, 0u, 1u, 2u}) {
    ASSERT_TRUE(reader.ReadPage(fx.file, p, &out).ok());
  }
  IoStats io = fx.base.stats();
  reader.FoldStatsInto(&io);
  EXPECT_EQ(io.cache_hits, 2u);
  EXPECT_EQ(io.cache_misses, 3u);
  EXPECT_EQ(io.cache_misses, io.TotalReads());
  EXPECT_GT(io.cache_evictions, 0u);
  EXPECT_GT(io.CacheHitRatio(), 0.0);
  // ToString mentions the cache counters once they are non-zero.
  EXPECT_NE(io.ToString().find("cache_hits"), std::string::npos);
}

}  // namespace
}  // namespace nmrs
