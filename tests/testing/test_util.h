#ifndef NMRS_TESTS_TESTING_TEST_UTIL_H_
#define NMRS_TESTS_TESTING_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/generators.h"
#include "sim/similarity_space.h"

namespace nmrs {
namespace testing {

/// The paper's running example (Table 1 + Figure 1): six servers over
/// three attributes — OS {MSW=0, RHL=1, SL=2}, Processor {AMD=0, Intel=1},
/// DB {Informix=0, DB2=1, Oracle=2} — with the hand-specified non-metric
/// distances (d1 violates the triangle inequality:
/// d1(MSW,SL)=1.0 > d1(MSW,RHL)+d1(RHL,SL)=0.9).
///
/// For query Q=[MSW,Intel,DB2] the reverse skyline is {O3, O6} =
/// row ids {2, 5}; the paper also lists each object's pruners.
struct RunningExample {
  // Value-id aliases for readability.
  enum OS : ValueId { kMSW = 0, kRHL = 1, kSL = 2 };
  enum Proc : ValueId { kAMD = 0, kIntel = 1 };
  enum DB : ValueId { kInformix = 0, kDB2 = 1, kOracle = 2 };

  Dataset dataset;
  SimilaritySpace space;
  Object query;  // [MSW, Intel, DB2]

  RunningExample();
};

/// A random all-categorical instance: dataset + similarity space + queries,
/// all derived deterministically from `seed`.
struct RandomInstance {
  Dataset data;
  SimilaritySpace space;

  RandomInstance(uint64_t seed, uint64_t num_rows,
                 const std::vector<size_t>& cardinalities,
                 bool normal_distribution = true);
};

}  // namespace testing
}  // namespace nmrs

#endif  // NMRS_TESTS_TESTING_TEST_UTIL_H_
