#include "testing/test_util.h"

namespace nmrs {
namespace testing {

RunningExample::RunningExample()
    : dataset(Schema::Categorical({3, 2, 3})) {
  // Figure 1 distance functions.
  DissimilarityMatrix d1(3);  // OS
  d1.SetSymmetric(kMSW, kRHL, 0.8);
  d1.SetSymmetric(kMSW, kSL, 1.0);
  d1.SetSymmetric(kRHL, kSL, 0.1);

  DissimilarityMatrix d2(2);  // Processor
  d2.SetSymmetric(kAMD, kIntel, 0.5);

  DissimilarityMatrix d3(3);  // DB
  d3.SetSymmetric(kInformix, kDB2, 0.5);
  d3.SetSymmetric(kInformix, kOracle, 0.9);
  d3.SetSymmetric(kDB2, kOracle, 0.4);

  space.AddCategorical(std::move(d1));
  space.AddCategorical(std::move(d2));
  space.AddCategorical(std::move(d3));

  // Table 1 objects (0-based ids O1..O6 -> rows 0..5).
  dataset.AppendCategoricalRow({kMSW, kAMD, kDB2});       // O1
  dataset.AppendCategoricalRow({kRHL, kAMD, kInformix});  // O2
  dataset.AppendCategoricalRow({kSL, kIntel, kOracle});   // O3
  dataset.AppendCategoricalRow({kMSW, kAMD, kDB2});       // O4 (dup of O1)
  dataset.AppendCategoricalRow({kRHL, kAMD, kInformix});  // O5 (dup of O2)
  dataset.AppendCategoricalRow({kMSW, kIntel, kDB2});     // O6 (== Q)

  query = Object({kMSW, kIntel, kDB2});
}

RandomInstance::RandomInstance(uint64_t seed, uint64_t num_rows,
                               const std::vector<size_t>& cardinalities,
                               bool normal_distribution)
    : data(Schema::Categorical(cardinalities)) {
  Rng rng(seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  data = normal_distribution
             ? GenerateNormal(num_rows, cardinalities, data_rng)
             : GenerateUniform(num_rows, cardinalities, data_rng);
  space = MakeRandomSpace(cardinalities, space_rng);
}

}  // namespace testing
}  // namespace nmrs
