#!/usr/bin/env python3
"""Correctness + perf gate on a freshly emitted BENCH_mutations.json.

ci.sh runs `bench_mutations --quick` and then this script. The build fails
if any of these hold:

  1. Any run says identical=0 — a query batch over a Database snapshot
     (the incremental base+delta merge) returned different rows than
     re-preparing the merged dataset from scratch and running the same
     batch standalone. Bit-identity to the rebuild is the mutable-dataset
     layer's core contract (docs/MUTABILITY.md), so this gate has no
     threshold and applies to every delta size, including 0%.
  2. The 1%-delta run's modeled query slowdown over the frozen-dataset
     baseline exceeds 1.3x. A snapshot IS a prepared dataset — the merge
     is paid once per epoch, not per query — so per-query cost should
     track the merged row count (~1% off the base). 1.3x is a regression
     floor catching anything that makes queries pay per-delta-row work,
     not a flake line: the ratio is built from the deterministic cost
     model, not wall time.

The bench itself reports the same two conditions as shape checks; this
script re-derives them from the JSON so CI fails even if the bench's
stdout is lost, and so the committed BENCH_mutations.json can be
re-audited offline.

Usage: check_mutation_gate.py [path/to/BENCH_mutations.json]
"""

import json
import sys

SLOWDOWN_THRESHOLD = 1.3
GATED_DELTA_PCT = 1.0


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_mutations.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"mutation-gate: cannot read {path}: {e}", file=sys.stderr)
        return 1

    runs = doc.get("runs", [])
    if not runs:
        print(f"mutation-gate: no runs in {path}", file=sys.stderr)
        return 1
    failures = []

    # 1. Correctness: every run must reproduce the from-scratch rebuild.
    for r in runs:
        if r.get("identical") == 0:
            failures.append(f"identical=0 at delta_pct={r.get('delta_pct')}")
    if not failures:
        print(f"mutation-gate: bit-identity OK across {len(runs)} runs")

    # 2. Modeled query slowdown at the gated delta size.
    gated = [r for r in runs if r.get("delta_pct") == GATED_DELTA_PCT]
    if not gated:
        print(
            f"mutation-gate: no delta_pct={GATED_DELTA_PCT} run in {path}",
            file=sys.stderr,
        )
        return 1
    worst = max(gated, key=lambda r: r.get("slowdown_vs_frozen", 0.0))
    slowdown = worst.get("slowdown_vs_frozen", 0.0)
    ok = slowdown <= SLOWDOWN_THRESHOLD
    print(
        f"mutation-gate: slowdown {'OK' if ok else 'FAIL'} — "
        f"delta_pct={GATED_DELTA_PCT} rows={worst.get('num_rows')} "
        f"mutations={worst.get('mutations')} "
        f"slowdown={slowdown:.3f} (need <= {SLOWDOWN_THRESHOLD:.1f})"
    )
    if not ok:
        failures.append(f"1%-delta modeled slowdown {slowdown:.3f}")

    if failures:
        print("mutation-gate: FAIL — " + "; ".join(failures), file=sys.stderr)
        return 1
    print("mutation-gate: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
