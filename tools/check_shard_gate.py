#!/usr/bin/env python3
"""Correctness + perf gate on a freshly emitted BENCH_shards.json.

ci.sh runs `bench_shards --quick` and then this script. The build fails
if any of these hold:

  1. Any run says identical=0 — the sharded scatter/gather + pruner
     exchange changed result rows relative to the single-shard reference.
     Bit-identity across shard counts and partitioners is the exchange's
     core contract (docs/SHARDING.md), so this gate has no threshold and
     applies on every run.
  2. The 4-shard z-order run's modeled makespan speedup over 1 shard is
     below 2.0x. The bench workload is scan-heavy with a per-machine page
     cache sized to a quarter of the base file, so four shards hold their
     slice resident while one machine thrashes; the deterministic LPT
     makespan model (max(total_work/W, largest task) per shard, plus the
     serialized exchange) lands well above 3x on both quick and full
     runs, so 2.0x is a regression floor, not a flake line.

The bench itself reports the same two conditions as shape checks; this
script re-derives them from the JSON so CI fails even if the bench's
stdout is lost, and so the committed BENCH_shards.json can be re-audited
offline.

Usage: check_shard_gate.py [path/to/BENCH_shards.json]
"""

import json
import sys

SPEEDUP_THRESHOLD = 2.0
GATED_SHARDS = 4
GATED_PARTITIONER = "zorder"


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_shards.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"shard-gate: cannot read {path}: {e}", file=sys.stderr)
        return 1

    runs = doc.get("runs", [])
    if not runs:
        print(f"shard-gate: no runs in {path}", file=sys.stderr)
        return 1
    failures = []

    # 1. Correctness: every run must reproduce the single-shard rows.
    for r in runs:
        if r.get("identical") == 0:
            failures.append(
                f"identical=0 at shards={r.get('shards')} "
                f"shard_by={r.get('shard_by')}"
            )
    if not failures:
        print(f"shard-gate: bit-identity OK across {len(runs)} runs")

    # 2. Modeled speedup at the widest z-order fan-out.
    gated = [
        r
        for r in runs
        if r.get("shards") == GATED_SHARDS
        and r.get("shard_by") == GATED_PARTITIONER
    ]
    if not gated:
        print(
            f"shard-gate: no shards={GATED_SHARDS} {GATED_PARTITIONER} "
            f"run in {path}",
            file=sys.stderr,
        )
        return 1
    worst = min(gated, key=lambda r: r.get("speedup_vs_1_shard", 0.0))
    speedup = worst.get("speedup_vs_1_shard", 0.0)
    ok = speedup >= SPEEDUP_THRESHOLD
    print(
        f"shard-gate: speedup {'OK' if ok else 'FAIL'} — "
        f"shards={GATED_SHARDS} ({GATED_PARTITIONER}) "
        f"rows={worst.get('num_rows')} queries={worst.get('num_queries')} "
        f"speedup={speedup:.2f} (need >= {SPEEDUP_THRESHOLD:.1f})"
    )
    if not ok:
        failures.append(f"4-shard modeled speedup {speedup:.2f}")

    if failures:
        print("shard-gate: FAIL — " + "; ".join(failures), file=sys.stderr)
        return 1
    print("shard-gate: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
