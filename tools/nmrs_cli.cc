// nmrs command-line driver: generate synthetic datasets, run reverse
// skyline queries over CSV data with CSV similarity matrices, and compare
// algorithms — without writing C++.
//
//   nmrs_cli generate --rows=N --cards=5,50,7 [--dist=normal|uniform|zipf]
//            --out=data.csv [--matrices=prefix] [--seed=S]
//       Generates a dataset (and one random dissimilarity matrix CSV per
//       attribute as <prefix><attr>.csv when --matrices is given).
//
//   nmrs_cli query --data=data.csv --matrices=prefix --query=1,2,3
//            [--algo=trs|srs|brs|naive|tsrs|ttrs] [--mem=0.1]
//            [--attrs=0,2] [--kernels] [--promote-rows=N] [--seed=S]
//            [--shards=N] [--shard-by=zorder|hash]
//            [common fault flags]
//       Runs a reverse-skyline query and prints the result rows + stats.
//       --kernels turns on the block dominance kernels (docs/KERNELS.md)
//       and prints which lane evaluators runtime dispatch picked
//       (avx2/scalar) plus the adaptive-dispatch telemetry (candidates
//       promoted to block evaluation, rows evaluated by the scalar probe
//       vs. block windows); --promote-rows=N sets how many rows a
//       candidate must survive before promotion (0 = promote immediately,
//       the pre-adaptive behavior). The result rows are identical either
//       way. The
//       common fault flags (see batch) work here too: with faults or
//       --replicas=N > 1 the query runs against replica 0's faulty view
//       with the remaining replicas attached for page-granular failover,
//       exactly as the batch engine wires each query.
//
//   nmrs_cli compare --data=data.csv --matrices=prefix --query=1,2,3
//       Runs BRS, SRS and TRS on the same query and prints a comparison.
//
//   nmrs_cli skyline --data=data.csv --matrices=prefix --query=1,2,3
//       Prints the dynamic skyline of the database w.r.t. the reference
//       object (BNL; the skyline the reverse skyline is defined through).
//
//   nmrs_cli influence --data=data.csv --matrices=prefix --queries=K
//            [--seed=S]
//       Samples K query objects, ranks them by |RS(Q)| and prints the
//       concentration diagnostics (top-3 share, Gini).
//
//   nmrs_cli batch --data=data.csv --matrices=prefix --queries=K
//            [--workers=W] [--threads=T] [--algo=trs|srs|brs] [--mem=0.1]
//            [--cache-pages=N | --cache-pct=P] [--kernels]
//            [--promote-rows=N] [--shared-scan] [--shared-group=G]
//            [--seed=S]
//            [--checksum] [--transient-p=P] [--corrupt-p=P]
//            [--data-loss-p=P] [--bad-pages=f:p,f:p,...] [--fault-seed=S]
//            [--retries=N] [--max-query-retries=N] [--fail-fast]
//            [--replicas=N] [--replica-seed-base=S]
//            [--bad-replicas=r:loss_p,...]
//            [--shards=N] [--shard-by=zorder|hash]
//       Samples K query objects and runs them as one batch on the parallel
//       query engine (W pool workers, each query optionally using T
//       intra-query threads), printing per-query results and the modeled
//       batch throughput. --cache-pages / --cache-pct attach a shared
//       buffer-pool page cache of N pages (or P% of the dataset's pages)
//       to the engine and print its CacheStats summary (docs/CACHING.md).
//       The fault flags (docs/ROBUSTNESS.md) inject deterministic storage
//       faults: --transient-p / --corrupt-p / --data-loss-p / --bad-pages
//       configure the FaultConfig (seeded by --fault-seed), --checksum
//       seals dataset pages with CRC-32C and verifies them on read,
//       --retries sets the per-page transient retry budget,
//       --max-query-retries re-runs failed queries on a clean view, and
//       --fail-fast restores the old first-error batch semantics.
//       --replicas=N models N storage replicas with independent fault
//       streams (ResiliencePolicy, seed base --replica-seed-base) and
//       fails reads over page by page; --bad-replicas=r:loss_p restricts
//       the faults to the listed replicas (replica r gets the shared
//       FaultConfig with data_loss_p forced to loss_p, everyone else runs
//       clean). Failed queries are reported individually; the exit code
//       is non-zero iff some query failed. --shared-scan runs groups of
//       --shared-group=G consecutive BRS/SRS queries through one shared
//       phase-1 pass over the dataset (docs/KERNELS.md) — bit-identical
//       per-query results, the scan's IO charged once per group — and
//       prints the shared-scan summary; it silently falls back to
//       per-query execution under fault injection, replica failover, or
//       other algorithms.
//
//       --shards=N (query and batch modes) partitions the prepared dataset
//       into N shards (--shard-by=zorder Z-order ranges, the default, or
//       --shard-by=hash) and runs the scatter/gather executor with the
//       cross-shard pruner exchange (docs/SHARDING.md) instead of the
//       single-shard engine — result rows are bit-identical either way.
//       Per-query output adds the per-shard candidate counts and the
//       exchange's message/byte/round ledger; the batch summary adds the
//       total MessageStats and the modeled network cost.
//
//       Overlay flags (docs/OVERLAYS.md): --overlay-users=K answers every
//       batch query for K synthetic per-user preference overlays (sparse
//       random deltas over the base matrices, each touching
//       --overlay-touch-pct=P percent of the off-diagonal entries, seeded
//       by --overlay-seed=S) through the incremental overlay executor —
//       one base run plus re-pruning of the overlay-sensitive rows, rows
//       bit-identical to rebuilding each user's patched space.
//       --overlay-file=path loads one overlay from a serialized delta file
//       ("attr from to d" lines) as the first user; in query mode the same
//       flag evaluates the single query under that user's overlay.
//
//   nmrs_cli serve --data=data.csv --matrices=prefix --script=workload.txt
//            [--algo=...] [--workers=W] [--shards=N] [--shard-by=...]
//            [--mem=0.1] [--threads=T] [--kernels] [--checksum]
//            [--cache-pages=N] [--max-delta=N] [--seed=S]
//       Online serving (docs/MUTABILITY.md): opens the dataset as a
//       mutable nmrs::Database and applies the scripted workload of
//       interleaved insert / delete / query / batch / compact / snapshot /
//       stats lines (grammar at CmdServe). Every query runs over an
//       epoch-pinned snapshot that is bit-identical to re-preparing the
//       mutated dataset from scratch; --max-delta caps the delta segment
//       (mutations then fail with the back-pressure status until a
//       `compact` line runs).
//
//       `query` and `batch` also route through the Database front door
//       (over a read-only generation-0 snapshot); their flags and output
//       are unchanged from the historical direct-engine wiring.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "nmrs.h"
#include "storage/replica_set.h"

namespace nmrs {
namespace {

using Flags = std::map<std::string, std::string>;

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "1";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string FlagOr(const Flags& flags, const std::string& key,
                   const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

// Strict non-negative integer flag parse. strtoull silently wraps "-1" to
// 18446744073709551615 (so e.g. --promote-rows=-1 used to mean "promote
// after 4 billion rows"); this rejects signs, junk and overflow instead.
StatusOr<uint64_t> ParseCount(const Flags& flags, const std::string& key,
                              uint64_t fallback) {
  auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const std::string& s = it->second;
  if (s.empty()) return Status::InvalidArgument("--" + key + " needs a value");
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          "--" + key + " must be a non-negative integer, got '" + s + "'");
    }
  }
  errno = 0;
  char* end = nullptr;
  const uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) {
    return Status::InvalidArgument("--" + key + " value '" + s +
                                   "' is out of range");
  }
  return v;
}

std::vector<uint64_t> ParseUintList(const std::string& csv) {
  std::vector<uint64_t> out;
  for (const std::string& tok : StrSplit(csv, ',')) {
    if (!tok.empty()) out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
  }
  return out;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

StatusOr<SimilaritySpace> LoadSpace(const Schema& schema,
                                    const std::string& prefix) {
  SimilaritySpace space;
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (schema.attribute(a).is_numeric) {
      space.AddNumeric(NumericDissimilarity());
      continue;
    }
    const std::string path = prefix + std::to_string(a) + ".csv";
    NMRS_ASSIGN_OR_RETURN(DissimilarityMatrix m, ReadMatrixCsvFile(path));
    if (m.cardinality() != schema.attribute(a).cardinality) {
      return Status::InvalidArgument(
          path + ": cardinality " + std::to_string(m.cardinality()) +
          " does not match attribute's " +
          std::to_string(schema.attribute(a).cardinality));
    }
    space.AddCategorical(std::move(m));
  }
  return space;
}

// Reads a serialized MatrixOverlay ("attr from to d" lines, '#' comments)
// and validates every entry against `base` (docs/OVERLAYS.md).
StatusOr<MatrixOverlay> LoadOverlayFile(const SimilaritySpace& base,
                                        const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  auto overlay = MatrixOverlay::Parse(base, text.str());
  if (!overlay.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   overlay.status().ToString());
  }
  return overlay;
}

// Parses a "v1,v2,..." row literal against `schema` (numeric attributes
// take doubles, categorical ones in-domain value ids). Shared by query
// flags and the serve script's insert/query lines.
Status ParseRowSpec(const Schema& schema, const std::string& csv,
                    std::vector<ValueId>* values,
                    std::vector<double>* numerics) {
  const auto tokens = StrSplit(csv, ',');
  if (tokens.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "row needs " + std::to_string(schema.num_attributes()) +
        " comma-separated values, got '" + csv + "'");
  }
  values->assign(schema.num_attributes(), 0);
  numerics->assign(schema.num_attributes(), 0.0);
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (schema.attribute(a).is_numeric) {
      (*numerics)[a] = std::strtod(tokens[a].c_str(), nullptr);
    } else {
      const uint64_t v = std::strtoull(tokens[a].c_str(), nullptr, 10);
      if (v >= schema.attribute(a).cardinality) {
        return Status::InvalidArgument("value " + tokens[a] +
                                       " out of domain for attribute " +
                                       std::to_string(a));
      }
      (*values)[a] = static_cast<ValueId>(v);
    }
  }
  return Status::OK();
}

StatusOr<Object> ParseQuery(const Dataset& data, const std::string& csv) {
  std::vector<ValueId> values;
  std::vector<double> numerics;
  NMRS_RETURN_IF_ERROR(ParseRowSpec(data.schema(), csv, &values, &numerics));
  return data.MakeObject(values, numerics);
}

StatusOr<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "naive") return Algorithm::kNaive;
  if (name == "brs") return Algorithm::kBRS;
  if (name == "srs") return Algorithm::kSRS;
  if (name == "trs") return Algorithm::kTRS;
  if (name == "tsrs") return Algorithm::kTileSRS;
  if (name == "ttrs") return Algorithm::kTileTRS;
  return Status::InvalidArgument("unknown algorithm '" + name + "'");
}

// Flags shared by every query-running command (query, compare, influence,
// batch): --mem, --attrs, --threads, --kernels, --checksum, --retries,
// --replicas, --replica-seed-base. One parse path so the commands cannot
// drift apart again (batch had grown resilience flags `query` could not
// spell).
Status ParseCommonOptions(const Flags& flags, const Schema& schema,
                          uint64_t dataset_pages, RSOptions* rs) {
  const double mem_frac =
      std::strtod(FlagOr(flags, "mem", "0.1").c_str(), nullptr);
  if (!(mem_frac > 0)) {
    return Status::InvalidArgument(
        "--mem must be a positive fraction of the dataset size, got '" +
        FlagOr(flags, "mem", "0.1") + "'");
  }
  rs->memory = MemoryBudget::FromFraction(mem_frac, dataset_pages);
  for (uint64_t a : ParseUintList(FlagOr(flags, "attrs", ""))) {
    if (a >= schema.num_attributes()) {
      return Status::InvalidArgument(
          "--attrs index " + std::to_string(a) +
          " out of range: the dataset has " +
          std::to_string(schema.num_attributes()) + " attributes");
    }
    rs->selected_attrs.push_back(static_cast<AttrId>(a));
  }
  rs->num_threads = std::atoi(FlagOr(flags, "threads", "1").c_str());
  if (rs->num_threads < 1) {
    return Status::InvalidArgument("--threads must be at least 1");
  }
  rs->use_kernels = flags.count("kernels") != 0;
  if (flags.count("promote-rows") != 0) {
    NMRS_ASSIGN_OR_RETURN(const uint64_t promote,
                          ParseCount(flags, "promote-rows", 16));
    if (promote > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("--promote-rows is out of range");
    }
    rs->kernel_promote_rows = static_cast<uint32_t>(promote);
  }
  rs->resilience.checksum_pages = flags.count("checksum") != 0;
  if (flags.count("retries") != 0) {
    rs->resilience.retry.max_attempts =
        std::atoi(FlagOr(flags, "retries", "3").c_str());
    if (rs->resilience.retry.max_attempts < 1) {
      return Status::InvalidArgument("--retries must be at least 1");
    }
  }
  const int replicas = std::atoi(FlagOr(flags, "replicas", "1").c_str());
  if (replicas < 1 || replicas > static_cast<int>(IoStats::kMaxReplicas)) {
    return Status::InvalidArgument(
        "--replicas must be in [1, " +
        std::to_string(IoStats::kMaxReplicas) + "]");
  }
  rs->resilience.replicas = replicas;
  if (flags.count("replica-seed-base") != 0) {
    rs->resilience.replica_fault_seed_base = std::strtoull(
        FlagOr(flags, "replica-seed-base", "0").c_str(), nullptr, 10);
  }
  return Status::OK();
}

void MaybePrintKernelBanner(const RSOptions& rs) {
  if (!rs.use_kernels) return;
  std::printf("dominance kernels on (dispatch: %s, promote after %u rows)\n",
              KernelDispatchName(ActiveKernelDispatch()),
              rs.kernel_promote_rows);
}

// Fault-injection flags shared by query and batch (docs/ROBUSTNESS.md):
// --fault-seed, --transient-p, --corrupt-p, --data-loss-p, --bad-pages.
Status ParseFaultFlags(const Flags& flags, FaultConfig* cfg) {
  cfg->seed =
      std::strtoull(FlagOr(flags, "fault-seed", "1").c_str(), nullptr, 10);
  cfg->transient_read_p =
      std::strtod(FlagOr(flags, "transient-p", "0").c_str(), nullptr);
  cfg->corrupt_p = std::strtod(FlagOr(flags, "corrupt-p", "0").c_str(),
                               nullptr);
  cfg->data_loss_p =
      std::strtod(FlagOr(flags, "data-loss-p", "0").c_str(), nullptr);
  for (const std::string& tok :
       StrSplit(FlagOr(flags, "bad-pages", ""), ',')) {
    if (tok.empty()) continue;
    const size_t colon = tok.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "--bad-pages entries must look like file:page, got '" + tok + "'");
    }
    cfg->bad_pages.insert(
        {static_cast<FileId>(
             std::strtoull(tok.substr(0, colon).c_str(), nullptr, 10)),
         std::strtoull(tok.substr(colon + 1).c_str(), nullptr, 10)});
  }
  return Status::OK();
}

// --shards=N / --shard-by=zorder|hash (docs/SHARDING.md).
Status ParseShardPlan(const Flags& flags, ShardPlanOptions* plan) {
  plan->num_shards = std::atoi(FlagOr(flags, "shards", "1").c_str());
  if (plan->num_shards < 1) {
    return Status::InvalidArgument("--shards must be at least 1");
  }
  const std::string by = FlagOr(flags, "shard-by", "zorder");
  if (by == "zorder") {
    plan->shard_by = ShardBy::kZOrderRange;
  } else if (by == "hash") {
    plan->shard_by = ShardBy::kHash;
  } else {
    return Status::InvalidArgument("--shard-by must be 'zorder' or 'hash'");
  }
  return Status::OK();
}

std::string ShardCandidateSummary(const ShardQueryBreakdown& b) {
  std::string out = "cands/shard=[";
  for (size_t s = 0; s < b.shard_candidates.size(); ++s) {
    if (s > 0) out += ",";
    out += std::to_string(b.shard_candidates[s]);
  }
  out += "]";
  if (b.messages.messages != 0) {
    out += " exchange: " + b.messages.ToString();
  }
  return out;
}

// --bad-replicas=r:loss_p,...: pins the faults to the listed replicas only.
// Replica r gets the shared FaultConfig with data_loss_p forced to loss_p
// (and its usual derived per-replica seed); every unlisted replica runs
// clean. Without the flag a faulty template fans out to ALL replicas with
// derived seeds (ReplicaSet::DeriveConfigs).
Status ParseBadReplicas(const Flags& flags, const FaultConfig& base,
                        const ResiliencePolicy& policy,
                        std::vector<FaultConfig>* out) {
  const std::string spec = FlagOr(flags, "bad-replicas", "");
  if (spec.empty()) return Status::OK();
  out->assign(static_cast<size_t>(policy.replicas), FaultConfig{});
  for (const std::string& tok : StrSplit(spec, ',')) {
    if (tok.empty()) continue;
    const size_t colon = tok.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "--bad-replicas entries must look like replica:loss_p, got '" +
          tok + "'");
    }
    const int r = std::atoi(tok.substr(0, colon).c_str());
    if (r < 0 || r >= policy.replicas) {
      return Status::InvalidArgument(
          "--bad-replicas index " + std::to_string(r) +
          " out of range for --replicas=" + std::to_string(policy.replicas));
    }
    FaultConfig cfg = base;
    cfg.seed = ReplicaSet::ReplicaSeed(base.seed,
                                       policy.replica_fault_seed_base, r);
    cfg.data_loss_p = std::strtod(tok.substr(colon + 1).c_str(), nullptr);
    (*out)[static_cast<size_t>(r)] = cfg;
  }
  return Status::OK();
}

std::string ReplicaReadsSummary(const IoStats& io) {
  std::string out;
  for (size_t r = 0; r < IoStats::kMaxReplicas; ++r) {
    if (io.replica_reads[r] == 0) continue;
    if (!out.empty()) out += " ";
    out += "r" + std::to_string(r) + "=" +
           std::to_string(io.replica_reads[r]);
  }
  return out;
}

int CmdGenerate(const Flags& flags) {
  const uint64_t rows =
      std::strtoull(FlagOr(flags, "rows", "1000").c_str(), nullptr, 10);
  const auto cards_u64 = ParseUintList(FlagOr(flags, "cards", "10,10,10"));
  std::vector<size_t> cards(cards_u64.begin(), cards_u64.end());
  if (cards.empty()) return Fail("--cards must list at least one domain");
  const std::string out = FlagOr(flags, "out", "data.csv");
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  const std::string dist = FlagOr(flags, "dist", "normal");

  Rng rng(seed);
  Rng data_rng = rng.Fork();
  Rng space_rng = rng.Fork();
  Dataset data = [&] {
    if (dist == "uniform") return GenerateUniform(rows, cards, data_rng);
    if (dist == "zipf") return GenerateZipf(rows, cards, 1.1, data_rng);
    return GenerateNormal(rows, cards, data_rng);
  }();
  Status s = WriteDatasetCsvFile(data, out);
  if (!s.ok()) return Fail(s.ToString());
  std::printf("wrote %llu rows to %s (density %.6f%%)\n",
              static_cast<unsigned long long>(rows), out.c_str(),
              data.Density() * 100);

  const std::string prefix = FlagOr(flags, "matrices", "");
  if (!prefix.empty()) {
    for (AttrId a = 0; a < cards.size(); ++a) {
      DissimilarityMatrix m = MakeRandomMatrix(cards[a], space_rng);
      const std::string path = prefix + std::to_string(a) + ".csv";
      s = WriteMatrixCsvFile(m, path);
      if (!s.ok()) return Fail(s.ToString());
      std::printf("wrote matrix %s (triangle violation rate %.3f)\n",
                  path.c_str(), m.TriangleViolationRate());
    }
  }
  return 0;
}

struct LoadedQuery {
  Dataset data;
  SimilaritySpace space;
  Object query;
};

StatusOr<LoadedQuery> LoadQuerySetup(const Flags& flags) {
  const std::string data_path = FlagOr(flags, "data", "");
  const std::string prefix = FlagOr(flags, "matrices", "");
  const std::string query_csv = FlagOr(flags, "query", "");
  if (data_path.empty() || prefix.empty() || query_csv.empty()) {
    return Status::InvalidArgument(
        "--data=, --matrices= and --query= are required");
  }
  NMRS_ASSIGN_OR_RETURN(Dataset data, ReadDatasetCsvFile(data_path));
  NMRS_ASSIGN_OR_RETURN(SimilaritySpace space,
                        LoadSpace(data.schema(), prefix));
  NMRS_ASSIGN_OR_RETURN(Object query, ParseQuery(data, query_csv));
  return LoadedQuery{std::move(data), std::move(space), std::move(query)};
}

void PrintStats(const QueryStats& s) {
  std::printf(
      "  checks=%llu (p1 %llu, p2 %llu)  survivors=%llu  batches=%llu+%llu\n"
      "  io: %llu seq + %llu rand pages   compute=%.2fms  response=%.2fms\n",
      static_cast<unsigned long long>(s.checks),
      static_cast<unsigned long long>(s.phase1_checks),
      static_cast<unsigned long long>(s.phase2_checks),
      static_cast<unsigned long long>(s.phase1_survivors),
      static_cast<unsigned long long>(s.phase1_batches),
      static_cast<unsigned long long>(s.phase2_batches),
      static_cast<unsigned long long>(s.io.TotalSequential()),
      static_cast<unsigned long long>(s.io.TotalRandom()),
      s.compute_millis, s.ResponseMillis());
  if (s.kernel_checks != 0 || s.kernel_scalar_rows != 0 ||
      s.kernel_promotions != 0) {
    std::printf(
        "  kernel_checks=%llu  promotions=%llu  scalar_rows=%llu  "
        "block_rows=%llu\n",
        static_cast<unsigned long long>(s.kernel_checks),
        static_cast<unsigned long long>(s.kernel_promotions),
        static_cast<unsigned long long>(s.kernel_scalar_rows),
        static_cast<unsigned long long>(s.kernel_block_rows));
  }
  if (s.io.transient_retries != 0 || s.io.checksum_failures != 0 ||
      s.io.quarantined_pages != 0 || s.io.failovers != 0) {
    std::printf(
        "  faults: %llu transient retries, %llu checksum failures, "
        "%llu quarantined page reads, %llu failovers\n",
        static_cast<unsigned long long>(s.io.transient_retries),
        static_cast<unsigned long long>(s.io.checksum_failures),
        static_cast<unsigned long long>(s.io.quarantined_pages),
        static_cast<unsigned long long>(s.io.failovers));
  }
  if (s.io.ReplicaReadsTotal() != 0) {
    std::printf("  replica reads: %s\n", ReplicaReadsSummary(s.io).c_str());
  }
}

int CmdQuery(const Flags& flags) {
  auto setup = LoadQuerySetup(flags);
  if (!setup.ok()) return Fail(setup.status().ToString());
  auto algo = ParseAlgorithm(FlagOr(flags, "algo", "trs"));
  if (!algo.ok()) return Fail(algo.status().ToString());

  // Everything below routes through the Database front door
  // (docs/MUTABILITY.md): Open prepares the dataset as generation 0 and
  // the query runs as a one-element batch over the pinned base snapshot —
  // bit-identical rows and counters to the historical direct
  // PrepareDataset + RunReverseSkyline wiring.
  DatabaseOptions dbopts;
  dbopts.algo = *algo;
  dbopts.prepare.checksum_pages = flags.count("checksum") != 0;
  const RowCodec codec(setup->data.schema(), kDefaultPageSize,
                       dbopts.prepare.checksum_pages);
  Status st = ParseCommonOptions(flags, setup->data.schema(),
                                 codec.PagesFor(setup->data.num_rows()),
                                 &dbopts.engine.rs);
  if (!st.ok()) return Fail(st.ToString());
  MaybePrintKernelBanner(dbopts.engine.rs);

  // --overlay-file evaluates the query under one user's preference overlay
  // (docs/OVERLAYS.md) — both the single-shard and sharded paths read it
  // from RSOptions.
  std::optional<MatrixOverlay> overlay;
  if (flags.count("overlay-file") != 0) {
    auto loaded = LoadOverlayFile(setup->space,
                                  FlagOr(flags, "overlay-file", ""));
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    overlay.emplace(std::move(*loaded));
    dbopts.engine.rs.overlay = &*overlay;
    std::printf("overlay: %zu delta entries\n", overlay->num_entries());
  }

  st = ParseFaultFlags(flags, &dbopts.engine.faults);
  if (!st.ok()) return Fail(st.ToString());
  dbopts.engine.max_query_retries =
      std::atoi(FlagOr(flags, "max-query-retries", "0").c_str());
  auto workers = ParseCount(flags, "workers", 1);
  if (!workers.ok()) return Fail(workers.status().ToString());
  if (*workers < 1) return Fail("--workers must be at least 1");
  dbopts.engine.num_workers = *workers;
  if (flags.count("shards") != 0) {
    st = ParseShardPlan(flags, &dbopts.shard_plan);
    if (!st.ok()) return Fail(st.ToString());
    dbopts.num_shards = dbopts.shard_plan.num_shards;
  }

  auto db = Database::Open(setup->data, setup->space, dbopts);
  if (!db.ok()) return Fail(db.status().ToString());
  auto batch = (*db)->RunBatch({setup->query});
  if (!batch.ok()) return Fail(batch.status().ToString());
  if (!batch->statuses()[0].ok()) return Fail(batch->statuses()[0].ToString());

  if (batch->sharded) {
    std::printf("RS(Q) via %s over %d %s shards: %zu rows\n",
                std::string(AlgorithmName(*algo)).c_str(),
                dbopts.shard_plan.num_shards,
                std::string(ShardByName(dbopts.shard_plan.shard_by)).c_str(),
                batch->results()[0].rows.size());
  } else {
    std::printf("RS(Q) via %s: %zu rows\n",
                std::string(AlgorithmName(*algo)).c_str(),
                batch->results()[0].rows.size());
  }
  for (RowId r : batch->results()[0].rows) {
    std::printf("  row %llu %s\n", static_cast<unsigned long long>(r),
                setup->data.GetObject(r).ToString().c_str());
  }
  if (batch->sharded) {
    std::printf("  %s\n",
                ShardCandidateSummary(batch->sharded->breakdown[0]).c_str());
  }
  PrintStats(batch->results()[0].stats);
  return 0;
}

int CmdCompare(const Flags& flags) {
  auto setup = LoadQuerySetup(flags);
  if (!setup.ok()) return Fail(setup.status().ToString());

  SimulatedDisk disk;
  std::printf("%-6s %-8s %-12s %-10s %-10s %-10s\n", "algo", "result",
              "checks", "seq IO", "rand IO", "compute");
  for (Algorithm algo :
       {Algorithm::kBRS, Algorithm::kSRS, Algorithm::kTRS}) {
    auto prepared = PrepareDataset(&disk, setup->data, algo);
    if (!prepared.ok()) return Fail(prepared.status().ToString());
    RSOptions opts;
    Status st = ParseCommonOptions(flags, setup->data.schema(),
                                   prepared->stored.num_pages(), &opts);
    if (!st.ok()) return Fail(st.ToString());
    auto result = RunReverseSkyline(*prepared, setup->space, setup->query,
                                    algo, opts);
    if (!result.ok()) return Fail(result.status().ToString());
    std::printf("%-6s %-8zu %-12llu %-10llu %-10llu %.2fms\n",
                std::string(AlgorithmName(algo)).c_str(),
                result->rows.size(),
                static_cast<unsigned long long>(result->stats.checks),
                static_cast<unsigned long long>(
                    result->stats.io.TotalSequential()),
                static_cast<unsigned long long>(
                    result->stats.io.TotalRandom()),
                result->stats.compute_millis);
  }
  return 0;
}

int CmdSkyline(const Flags& flags) {
  auto setup = LoadQuerySetup(flags);
  if (!setup.ok()) return Fail(setup.status().ToString());
  auto sky = DynamicSkylineBNL(setup->data, setup->space, setup->query);
  std::printf("dynamic skyline w.r.t. %s: %zu rows\n",
              setup->query.ToString().c_str(), sky.size());
  for (RowId r : sky) {
    std::printf("  row %llu %s\n", static_cast<unsigned long long>(r),
                setup->data.GetObject(r).ToString().c_str());
  }
  return 0;
}

int CmdInfluence(const Flags& flags) {
  const std::string data_path = FlagOr(flags, "data", "");
  const std::string prefix = FlagOr(flags, "matrices", "");
  if (data_path.empty() || prefix.empty()) {
    return Fail("--data= and --matrices= are required");
  }
  auto data = ReadDatasetCsvFile(data_path);
  if (!data.ok()) return Fail(data.status().ToString());
  auto space = LoadSpace(data->schema(), prefix);
  if (!space.ok()) return Fail(space.status().ToString());

  const int k = std::atoi(FlagOr(flags, "queries", "10").c_str());
  Rng rng(std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10));
  std::vector<Object> queries;
  for (int i = 0; i < k; ++i) {
    queries.push_back(SampleUniformQuery(*data, rng));
  }

  SimulatedDisk disk;
  auto prepared = PrepareDataset(&disk, *data, Algorithm::kTRS);
  if (!prepared.ok()) return Fail(prepared.status().ToString());
  RSOptions opts;
  Status st = ParseCommonOptions(flags, data->schema(),
                                 prepared->stored.num_pages(), &opts);
  if (!st.ok()) return Fail(st.ToString());
  auto report = AnalyzeInfluence(*prepared, *space, queries, Algorithm::kTRS,
                                 opts);
  if (!report.ok()) return Fail(report.status().ToString());

  std::printf("%-8s %-20s %s\n", "rank", "query", "influence |RS(Q)|");
  int rank = 1;
  for (const auto& entry : report->ranking) {
    std::printf("%-8d %-20s %llu\n", rank++,
                queries[entry.query_index].ToString().c_str(),
                static_cast<unsigned long long>(entry.influence));
  }
  std::printf("\ntotal influence %llu, top-3 share %.1f%%, Gini %.2f\n",
              static_cast<unsigned long long>(report->total_influence),
              report->TopShare(3) * 100, report->Gini());
  return 0;
}

int CmdBatch(const Flags& flags) {
  const std::string data_path = FlagOr(flags, "data", "");
  const std::string prefix = FlagOr(flags, "matrices", "");
  if (data_path.empty() || prefix.empty()) {
    return Fail("--data= and --matrices= are required");
  }
  auto data = ReadDatasetCsvFile(data_path);
  if (!data.ok()) return Fail(data.status().ToString());
  auto space = LoadSpace(data->schema(), prefix);
  if (!space.ok()) return Fail(space.status().ToString());
  auto algo = ParseAlgorithm(FlagOr(flags, "algo", "trs"));
  if (!algo.ok()) return Fail(algo.status().ToString());

  const int k = std::atoi(FlagOr(flags, "queries", "8").c_str());
  if (k < 1) return Fail("--queries must be at least 1");
  Rng rng(std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10));
  std::vector<Object> queries;
  for (int i = 0; i < k; ++i) {
    queries.push_back(SampleUniformQuery(*data, rng));
  }

  // The batch runs through the Database front door (docs/MUTABILITY.md):
  // Open prepares the dataset as generation 0, the engine options below
  // shape the snapshot's executor exactly as they shaped the historical
  // standalone QueryEngine / ShardedQueryEngine wiring.
  DatabaseOptions dbopts;
  dbopts.algo = *algo;
  dbopts.prepare.checksum_pages = flags.count("checksum") != 0;
  const RowCodec codec(data->schema(), kDefaultPageSize,
                       dbopts.prepare.checksum_pages);
  const uint64_t dataset_pages = codec.PagesFor(data->num_rows());

  EngineOptions& eopts = dbopts.engine;
  auto workers = ParseCount(flags, "workers", 4);
  if (!workers.ok()) return Fail(workers.status().ToString());
  if (*workers < 1) return Fail("--workers must be at least 1");
  eopts.num_workers = *workers;
  Status st = ParseCommonOptions(flags, data->schema(), dataset_pages,
                                 &eopts.rs);
  if (!st.ok()) return Fail(st.ToString());
  MaybePrintKernelBanner(eopts.rs);
  st = ParseFaultFlags(flags, &eopts.faults);
  if (!st.ok()) return Fail(st.ToString());
  st = ParseBadReplicas(flags, eopts.faults, eopts.rs.resilience,
                        &eopts.replica_faults);
  if (!st.ok()) return Fail(st.ToString());
  eopts.max_query_retries =
      std::atoi(FlagOr(flags, "max-query-retries", "0").c_str());
  eopts.fail_fast = flags.count("fail-fast") != 0;
  eopts.shared_scan = flags.count("shared-scan") != 0;
  if (flags.count("shared-group") != 0) {
    auto group = ParseCount(flags, "shared-group", 16);
    if (!group.ok()) return Fail(group.status().ToString());
    if (*group < 1) return Fail("--shared-group must be at least 1");
    eopts.shared_scan_group = *group;
  }
  if (flags.count("cache-pages") != 0 && flags.count("cache-pct") != 0) {
    return Fail("--cache-pages and --cache-pct are mutually exclusive");
  }
  if (flags.count("cache-pages") != 0) {
    auto cache = ParseCount(flags, "cache-pages", 0);
    if (!cache.ok()) return Fail(cache.status().ToString());
    eopts.cache_pages = *cache;
  } else if (flags.count("cache-pct") != 0) {
    const double pct =
        std::strtod(FlagOr(flags, "cache-pct", "0").c_str(), nullptr);
    if (pct < 0 || pct > 100) return Fail("--cache-pct must be in [0, 100]");
    eopts.cache_pages =
        pct == 0 ? 0
                 : MemoryBudget::FromFraction(pct / 100.0, dataset_pages)
                       .pages;
  }

  if (flags.count("shards") != 0) {
    st = ParseShardPlan(flags, &dbopts.shard_plan);
    if (!st.ok()) return Fail(st.ToString());
    dbopts.num_shards = dbopts.shard_plan.num_shards;
  }

  auto db = Database::Open(*data, *space, dbopts);
  if (!db.ok()) return Fail(db.status().ToString());
  // With no mutations yet the snapshot IS the base generation (free); the
  // handle gives the printers access to the executor's telemetry.
  auto snap = (*db)->Snapshot();
  if (!snap.ok()) return Fail(snap.status().ToString());

  // --overlay-users / --overlay-file: answer every query for K per-user
  // preference overlays through the incremental overlay executor
  // (docs/OVERLAYS.md) — one base run per query plus re-pruning of the
  // overlay-sensitive rows, instead of one full batch per user.
  if (flags.count("overlay-users") != 0 || flags.count("overlay-file") != 0) {
    auto users = ParseCount(flags, "overlay-users", 0);
    if (!users.ok()) return Fail(users.status().ToString());
    const double touch_pct = std::strtod(
        FlagOr(flags, "overlay-touch-pct", "1").c_str(), nullptr);
    if (!(touch_pct >= 0) || touch_pct > 100) {
      return Fail("--overlay-touch-pct must be in [0, 100]");
    }
    std::vector<MatrixOverlay> overlays;
    overlays.reserve(static_cast<size_t>(*users) + 1);
    if (flags.count("overlay-file") != 0) {
      auto loaded = LoadOverlayFile(*space, FlagOr(flags, "overlay-file", ""));
      if (!loaded.ok()) return Fail(loaded.status().ToString());
      overlays.push_back(std::move(*loaded));
    }
    Rng orng(std::strtoull(FlagOr(flags, "overlay-seed", "7").c_str(),
                           nullptr, 10));
    for (uint64_t u = 0; u < *users; ++u) {
      overlays.push_back(MakeRandomOverlay(*space, orng, touch_pct / 100.0));
    }
    if (overlays.empty()) {
      return Fail("--overlay-users must be at least 1 "
                  "when no --overlay-file is given");
    }
    std::vector<const MatrixOverlay*> ptrs;
    size_t total_entries = 0;
    for (const auto& o : overlays) {
      ptrs.push_back(&o);
      total_entries += o.num_entries();
    }

    // OverlayBatchResult and ShardedOverlayBatchResult expose the same
    // telemetry surface; print either.
    const auto print_overlay = [&](const auto& ob) -> int {
      std::printf("overlay batch: %d queries x %zu users "
                  "(%zu delta entries total)\n",
                  k, ptrs.size(), total_entries);
      for (int i = 0; i < k; ++i) {
        if (!ob.statuses[i].ok()) {
          std::printf("  Q%-3d %-20s FAILED: %s\n", i,
                      queries[i].ToString().c_str(),
                      ob.statuses[i].ToString().c_str());
          continue;
        }
        std::string sizes;
        const size_t show = std::min<size_t>(ob.results[i].size(), 16);
        for (size_t u = 0; u < show; ++u) {
          if (u > 0) sizes += ",";
          sizes += std::to_string(ob.results[i][u].rows.size());
        }
        if (ob.results[i].size() > show) sizes += ",...";
        std::printf("  Q%-3d %-20s |RS| per user = [%s]\n", i,
                    queries[i].ToString().c_str(), sizes.c_str());
      }
      std::printf(
          "rows: %llu overlay-sensitive + %llu invariant (user, row) pairs\n"
          "re-checks: %llu scans, %llu candidate checks, %llu pair tests\n"
          "overlay io: %llu seq + %llu rand pages  total io: %llu pages\n"
          "wall %.1fms, modeled makespan %.1fms, modeled throughput %.2f "
          "answers/s\n",
          static_cast<unsigned long long>(ob.sensitive_rows),
          static_cast<unsigned long long>(ob.invariant_rows),
          static_cast<unsigned long long>(ob.recheck_scans),
          static_cast<unsigned long long>(ob.recheck_checks),
          static_cast<unsigned long long>(ob.recheck_pair_tests),
          static_cast<unsigned long long>(ob.overlay_io.TotalSequential()),
          static_cast<unsigned long long>(ob.overlay_io.TotalRandom()),
          static_cast<unsigned long long>(ob.total_io.Total()),
          ob.wall_millis, ob.ModeledMakespanMillis(), ob.ModeledQps());
      if (!ob.ok()) {
        std::fprintf(stderr, "some queries failed: %s\n",
                     ob.first_error().ToString().c_str());
        return 1;
      }
      return 0;
    };

    auto ob = snap->RunOverlayBatch(queries, ptrs);
    if (!ob.ok()) return Fail(ob.status().ToString());
    return ob->sharded ? print_overlay(*ob->sharded)
                       : print_overlay(*ob->plain);
  }

  auto dbr = snap->RunBatch(queries);
  if (!dbr.ok()) return Fail(dbr.status().ToString());

  if (dbr->sharded) {
    const ShardedBatchResult* batch = &*dbr->sharded;
    std::printf("batch of %d %s queries on %zu workers x %d %s shards:\n", k,
                std::string(AlgorithmName(*algo)).c_str(),
                snap->sharded_engine()->num_workers(),
                dbopts.shard_plan.num_shards,
                std::string(ShardByName(dbopts.shard_plan.shard_by)).c_str());
    for (int i = 0; i < k; ++i) {
      const QueryStats& s = batch->results[i].stats;
      if (batch->statuses[i].ok()) {
        std::printf("  Q%-3d %-20s |RS|=%-5zu %s\n", i,
                    queries[i].ToString().c_str(),
                    batch->results[i].rows.size(),
                    ShardCandidateSummary(batch->breakdown[i]).c_str());
      } else {
        std::printf("  Q%-3d %-20s FAILED: %s (partial io %llu pages)\n", i,
                    queries[i].ToString().c_str(),
                    batch->statuses[i].ToString().c_str(),
                    static_cast<unsigned long long>(s.io.Total()));
      }
    }
    std::printf(
        "total io: %llu seq + %llu rand pages\n"
        "exchange: %s (modeled %.2fms)\n"
        "wall %.1fms, modeled makespan %.1fms, modeled throughput %.2f "
        "q/s\n",
        static_cast<unsigned long long>(batch->total_io.TotalSequential()),
        static_cast<unsigned long long>(batch->total_io.TotalRandom()),
        batch->total_messages.ToString().c_str(),
        batch->ExchangeModeledMillis(), batch->wall_millis,
        batch->ModeledMakespanMillis(), batch->ModeledQps());
    if (eopts.shared_scan) {
      if (batch->shared_scan_groups != 0) {
        std::printf(
            "shared scans: %llu (group, shard) passes, %llu shared "
            "batches, %llu shared pages\n",
            static_cast<unsigned long long>(batch->shared_scan_groups),
            static_cast<unsigned long long>(batch->shared_scan_batches),
            static_cast<unsigned long long>(batch->shared_io.Total()));
      } else {
        std::printf("shared scans: fell back to per-query execution\n");
      }
    }
    if (batch->total_io.transient_retries != 0 ||
        batch->total_io.checksum_failures != 0 ||
        batch->total_io.quarantined_pages != 0 ||
        batch->total_io.failovers != 0) {
      std::printf(
          "faults: %llu transient retries, %llu checksum failures, "
          "%llu quarantined page reads, %llu failovers\n",
          static_cast<unsigned long long>(batch->total_io.transient_retries),
          static_cast<unsigned long long>(batch->total_io.checksum_failures),
          static_cast<unsigned long long>(batch->total_io.quarantined_pages),
          static_cast<unsigned long long>(batch->total_io.failovers));
    }
    if (batch->total_io.ReplicaReadsTotal() != 0) {
      std::printf("replica reads: %s\n",
                  ReplicaReadsSummary(batch->total_io).c_str());
    }
    if (batch->tasks_retried != 0) {
      std::printf("%llu shard tasks recovered via clean-view retry\n",
                  static_cast<unsigned long long>(batch->tasks_retried));
    }
    if (!batch->ok()) {
      std::fprintf(stderr, "%zu of %d queries failed\n", batch->num_failed(),
                   k);
      return 1;
    }
    return 0;
  }

  const BatchResult* batch = &*dbr->plain;
  std::printf("batch of %d %s queries on %zu workers:\n", k,
              std::string(AlgorithmName(*algo)).c_str(),
              snap->engine()->num_workers());
  for (int i = 0; i < k; ++i) {
    const QueryStats& s = batch->results[i].stats;
    if (batch->statuses[i].ok()) {
      std::printf("  Q%-3d %-20s |RS|=%-5zu response=%.2fms\n", i,
                  queries[i].ToString().c_str(),
                  batch->results[i].rows.size(), s.ResponseMillis());
    } else {
      std::printf("  Q%-3d %-20s FAILED: %s (partial io %llu pages)\n", i,
                  queries[i].ToString().c_str(),
                  batch->statuses[i].ToString().c_str(),
                  static_cast<unsigned long long>(s.io.Total()));
    }
  }
  std::printf(
      "total io: %llu seq + %llu rand pages\n"
      "wall %.1fms, modeled makespan %.1fms, modeled throughput %.2f q/s\n",
      static_cast<unsigned long long>(batch->total_io.TotalSequential()),
      static_cast<unsigned long long>(batch->total_io.TotalRandom()),
      batch->wall_millis, batch->ModeledMakespanMillis(),
      batch->ModeledQps());
  if (eopts.rs.use_kernels) {
    uint64_t kchecks = 0, promos = 0, scalar_rows = 0, block_rows = 0;
    for (const auto& r : batch->results) {
      kchecks += r.stats.kernel_checks;
      promos += r.stats.kernel_promotions;
      scalar_rows += r.stats.kernel_scalar_rows;
      block_rows += r.stats.kernel_block_rows;
    }
    std::printf("kernels: %llu kernel checks, %llu promotions, "
                "%llu scalar rows, %llu block rows\n",
                static_cast<unsigned long long>(kchecks),
                static_cast<unsigned long long>(promos),
                static_cast<unsigned long long>(scalar_rows),
                static_cast<unsigned long long>(block_rows));
  }
  if (eopts.shared_scan) {
    if (batch->shared_scan_groups != 0) {
      std::printf("shared scans: %llu groups, %llu shared batches, "
                  "%llu shared pages\n",
                  static_cast<unsigned long long>(batch->shared_scan_groups),
                  static_cast<unsigned long long>(batch->shared_scan_batches),
                  static_cast<unsigned long long>(batch->shared_io.Total()));
    } else {
      std::printf("shared scans: fell back to per-query execution\n");
    }
  }
  if (batch->total_io.transient_retries != 0 ||
      batch->total_io.checksum_failures != 0 ||
      batch->total_io.quarantined_pages != 0 ||
      batch->total_io.failovers != 0) {
    std::printf("faults: %llu transient retries, %llu checksum failures, "
                "%llu quarantined page reads, %llu failovers\n",
                static_cast<unsigned long long>(
                    batch->total_io.transient_retries),
                static_cast<unsigned long long>(
                    batch->total_io.checksum_failures),
                static_cast<unsigned long long>(
                    batch->total_io.quarantined_pages),
                static_cast<unsigned long long>(batch->total_io.failovers));
  }
  if (batch->total_io.ReplicaReadsTotal() != 0) {
    std::printf("replica reads: %s\n",
                ReplicaReadsSummary(batch->total_io).c_str());
  }
  if (!batch->quarantined.empty()) {
    std::printf("quarantined pages:");
    for (const auto& [file, page] : batch->quarantined) {
      std::printf(" %u:%llu", file, static_cast<unsigned long long>(page));
    }
    std::printf("\n");
  }
  if (batch->queries_retried != 0) {
    std::printf("%llu queries recovered via clean-view retry\n",
                static_cast<unsigned long long>(batch->queries_retried));
  }
  if (snap->engine()->buffer_pool() != nullptr) {
    std::printf("cache (%llu pages): %s\n",
                static_cast<unsigned long long>(
                    snap->engine()->buffer_pool()->capacity_pages()),
                snap->engine()->buffer_pool()->stats().ToString().c_str());
  }
  if (!batch->ok()) {
    std::fprintf(stderr, "%zu of %d queries failed\n", batch->num_failed(),
                 k);
    return 1;
  }
  return 0;
}

// `serve` — online serving loop (docs/MUTABILITY.md): opens the CSV
// dataset as a mutable Database and applies a scripted workload of
// interleaved mutations and queries. Script grammar, one command per
// line ('#' starts a comment, blank lines are skipped):
//
//   insert v1,v2,...   append a row (numeric attrs take doubles)
//   delete KEY         remove the live row with that stable key
//   query v1,v2,...    reverse-skyline query over the current snapshot
//   batch K            K sampled queries as one engine batch
//   compact            fold the delta into a new base generation
//   snapshot           print the pinned epoch (generation, delta, rows)
//   stats              print cumulative DbStats
//
// Output sticks to deterministic fields (keys, row literals, counts) so
// scripted runs can be diffed; a failing script line aborts with its
// line number and a non-zero exit.
int CmdServe(const Flags& flags) {
  const std::string data_path = FlagOr(flags, "data", "");
  const std::string prefix = FlagOr(flags, "matrices", "");
  const std::string script_path = FlagOr(flags, "script", "");
  if (data_path.empty() || prefix.empty() || script_path.empty()) {
    return Fail("--data=, --matrices= and --script= are required");
  }
  auto data = ReadDatasetCsvFile(data_path);
  if (!data.ok()) return Fail(data.status().ToString());
  auto space = LoadSpace(data->schema(), prefix);
  if (!space.ok()) return Fail(space.status().ToString());
  auto algo = ParseAlgorithm(FlagOr(flags, "algo", "trs"));
  if (!algo.ok()) return Fail(algo.status().ToString());

  DatabaseOptions dbopts;
  dbopts.algo = *algo;
  dbopts.prepare.checksum_pages = flags.count("checksum") != 0;
  const RowCodec codec(data->schema(), kDefaultPageSize,
                       dbopts.prepare.checksum_pages);
  Status st = ParseCommonOptions(flags, data->schema(),
                                 codec.PagesFor(data->num_rows()),
                                 &dbopts.engine.rs);
  if (!st.ok()) return Fail(st.ToString());
  auto workers = ParseCount(flags, "workers", 1);
  if (!workers.ok()) return Fail(workers.status().ToString());
  if (*workers < 1) return Fail("--workers must be at least 1");
  dbopts.engine.num_workers = *workers;
  if (flags.count("cache-pages") != 0) {
    auto cache = ParseCount(flags, "cache-pages", 0);
    if (!cache.ok()) return Fail(cache.status().ToString());
    dbopts.engine.cache_pages = *cache;
  }
  if (flags.count("shards") != 0) {
    st = ParseShardPlan(flags, &dbopts.shard_plan);
    if (!st.ok()) return Fail(st.ToString());
    dbopts.num_shards = dbopts.shard_plan.num_shards;
  }
  if (flags.count("max-delta") != 0) {
    auto max_delta = ParseCount(flags, "max-delta", dbopts.max_delta_mutations);
    if (!max_delta.ok()) return Fail(max_delta.status().ToString());
    dbopts.max_delta_mutations = *max_delta;
  }

  auto db = Database::Open(*data, *space, dbopts);
  if (!db.ok()) return Fail(db.status().ToString());

  // key -> printable row literal, kept in lockstep with the mutations so
  // query results can show row contents without re-reading pages.
  std::map<uint64_t, std::string> mirror;
  for (RowId r = 0; r < data->num_rows(); ++r) {
    mirror[r] = data->GetObject(r).ToString();
  }

  std::ifstream in(script_path);
  if (!in) return Fail("cannot open --script=" + script_path);
  Rng rng(std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10));

  const auto delta_tag = [](const DeltaVersion& v) {
    return "+" + std::to_string(v.inserts) + "i/" +
           std::to_string(v.deletes) + "d";
  };
  const auto fail_line = [](int line_no, const std::string& msg) {
    return Fail("script line " + std::to_string(line_no) + ": " + msg);
  };

  uint64_t queries_run = 0;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream tokens(line);
    std::string cmd, rest;
    tokens >> cmd;
    std::getline(tokens, rest);
    const size_t start = rest.find_first_not_of(" \t");
    const size_t end = rest.find_last_not_of(" \t");
    rest = start == std::string::npos ? ""
                                      : rest.substr(start, end - start + 1);
    if (cmd.empty()) continue;

    if (cmd == "insert") {
      std::vector<ValueId> values;
      std::vector<double> numerics;
      st = ParseRowSpec((*db)->schema(), rest, &values, &numerics);
      if (!st.ok()) return fail_line(line_no, st.ToString());
      auto key = (*db)->Insert(values, numerics);
      if (!key.ok()) return fail_line(line_no, key.status().ToString());
      mirror[*key] = (*db)->MakeObject(values, numerics).ToString();
      std::printf("insert key=%llu %s (%s)\n",
                  static_cast<unsigned long long>(*key),
                  mirror[*key].c_str(),
                  delta_tag((*db)->delta_version()).c_str());
    } else if (cmd == "delete") {
      const uint64_t key = std::strtoull(rest.c_str(), nullptr, 10);
      st = (*db)->Delete(key);
      if (!st.ok()) return fail_line(line_no, st.ToString());
      mirror.erase(key);
      std::printf("delete key=%llu (%s)\n",
                  static_cast<unsigned long long>(key),
                  delta_tag((*db)->delta_version()).c_str());
    } else if (cmd == "query") {
      std::vector<ValueId> values;
      std::vector<double> numerics;
      st = ParseRowSpec((*db)->schema(), rest, &values, &numerics);
      if (!st.ok()) return fail_line(line_no, st.ToString());
      auto r = (*db)->Query((*db)->MakeObject(values, numerics));
      if (!r.ok()) return fail_line(line_no, r.status().ToString());
      ++queries_run;
      std::printf("RS(Q=%s) via %s @gen%llu%s: %zu rows\n", rest.c_str(),
                  std::string(AlgorithmName(*algo)).c_str(),
                  static_cast<unsigned long long>(r->snapshot_generation),
                  delta_tag(r->snapshot_version).c_str(),
                  r->keys.size());
      for (uint64_t key : r->keys) {
        const auto it = mirror.find(key);
        std::printf("  key %llu %s\n", static_cast<unsigned long long>(key),
                    it == mirror.end() ? "?" : it->second.c_str());
      }
    } else if (cmd == "batch") {
      const int k = std::atoi(rest.c_str());
      if (k < 1) return fail_line(line_no, "batch needs a positive count");
      std::vector<Object> queries;
      queries.reserve(k);
      for (int i = 0; i < k; ++i) {
        queries.push_back(SampleUniformQuery(*data, rng));
      }
      auto batch = (*db)->RunBatch(queries);
      if (!batch.ok()) return fail_line(line_no, batch.status().ToString());
      if (!batch->ok()) {
        return fail_line(line_no, batch->first_error().ToString());
      }
      queries_run += k;
      std::string sizes;
      for (int i = 0; i < k; ++i) {
        if (i > 0) sizes += ",";
        sizes += std::to_string(batch->results()[i].rows.size());
      }
      std::printf("batch of %d @gen%llu%s: |RS| = [%s]\n", k,
                  static_cast<unsigned long long>(batch->snapshot_generation),
                  delta_tag(batch->snapshot_version).c_str(), sizes.c_str());
    } else if (cmd == "compact") {
      st = (*db)->Compact();
      if (!st.ok()) return fail_line(line_no, st.ToString());
      std::printf("compact -> gen%llu, %llu rows\n",
                  static_cast<unsigned long long>((*db)->generation()),
                  static_cast<unsigned long long>((*db)->num_rows()));
    } else if (cmd == "snapshot") {
      auto snap = (*db)->Snapshot();
      if (!snap.ok()) return fail_line(line_no, snap.status().ToString());
      std::printf("snapshot gen%llu%s: %llu rows\n",
                  static_cast<unsigned long long>(snap->generation()),
                  delta_tag(snap->delta_version()).c_str(),
                  static_cast<unsigned long long>(snap->num_rows()));
    } else if (cmd == "stats") {
      const DbStats s = (*db)->stats();
      std::printf("stats: %llu inserts, %llu deletes, %llu wal records, "
                  "%llu compactions, %llu snapshots built (+%llu reused)\n",
                  static_cast<unsigned long long>(s.inserts),
                  static_cast<unsigned long long>(s.deletes),
                  static_cast<unsigned long long>(s.wal_records),
                  static_cast<unsigned long long>(s.compactions),
                  static_cast<unsigned long long>(s.snapshots_built),
                  static_cast<unsigned long long>(s.snapshots_reused));
    } else {
      return fail_line(line_no, "unknown command '" + cmd + "'");
    }
  }

  const DbStats s = (*db)->stats();
  std::printf("served: %llu inserts, %llu deletes, %llu queries, "
              "%llu compactions; gen%llu holds %llu live rows\n",
              static_cast<unsigned long long>(s.inserts),
              static_cast<unsigned long long>(s.deletes),
              static_cast<unsigned long long>(queries_run),
              static_cast<unsigned long long>(s.compactions),
              static_cast<unsigned long long>((*db)->generation()),
              static_cast<unsigned long long>((*db)->num_rows()));
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: nmrs_cli <generate|query|compare|skyline|influence|"
                 "batch|serve> [--flags]\n"
                 "see the header comment of tools/nmrs_cli.cc\n");
    return 1;
  }
  const std::string cmd = argv[1];
  const Flags flags = ParseFlags(argc, argv);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "query") return CmdQuery(flags);
  if (cmd == "compare") return CmdCompare(flags);
  if (cmd == "skyline") return CmdSkyline(flags);
  if (cmd == "influence") return CmdInfluence(flags);
  if (cmd == "batch") return CmdBatch(flags);
  if (cmd == "serve") return CmdServe(flags);
  return Fail("unknown command '" + cmd + "'");
}

}  // namespace
}  // namespace nmrs

int main(int argc, char** argv) { return nmrs::Run(argc, argv); }
