#!/usr/bin/env python3
"""Perf-sanity gate on a freshly emitted BENCH_kernels.json.

ci.sh runs `bench_kernels --quick` and then this script: the build fails
if the block dominance kernel is *slower* than the scalar early-abort loop
(speedup < 1.0) on the largest-cardinality micro config, where the gather
-> compare -> movemask shape has the most work per byte and should win by
the widest margin. The threshold is deliberately looser than the 1.5x
shape check bench_kernels itself reports, so a loaded CI host does not
flake the build while a real regression (kernel slower than scalar) still
fails it.

Usage: check_kernel_gate.py [path/to/BENCH_kernels.json]
"""

import json
import sys

THRESHOLD = 1.0


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernels.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"kernel-gate: cannot read {path}: {e}", file=sys.stderr)
        return 1

    micro = [r for r in doc.get("runs", []) if r.get("config") == "micro"]
    if not micro:
        print(f"kernel-gate: no micro runs in {path}", file=sys.stderr)
        return 1

    if any(r.get("dispatch") != "avx2" for r in micro):
        # The blocked scalar fallback is only expected to be around parity
        # with the early-abort loop; the gate guards the SIMD path.
        print("kernel-gate: SKIP — non-avx2 dispatch, nothing to gate")
        return 0

    top_card = max(r["cardinality"] for r in micro)
    gated = [r for r in micro if r["cardinality"] == top_card]
    worst = min(gated, key=lambda r: r["speedup"])
    ok = worst["speedup"] >= THRESHOLD
    verdict = "OK" if ok else "FAIL"
    print(
        f"kernel-gate: {verdict} — dispatch={worst.get('dispatch', '?')} "
        f"cardinality={top_card} rows={worst['num_rows']} "
        f"speedup={worst['speedup']:.2f} (need >= {THRESHOLD:.1f})"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
