#!/usr/bin/env python3
"""Perf-sanity gate on a freshly emitted BENCH_kernels.json.

ci.sh runs `bench_kernels --quick` and then this script. The build fails
if any of these hold:

  1. Any run that reports an `identical` field says 0 — the kernels or the
     shared scan changed results. This is a correctness gate and applies
     on every dispatch.
  2. micro: the block dominance kernel is *slower* than the scalar
     early-abort loop (speedup < 1.0) on the largest-cardinality micro
     config, where the gather -> compare -> movemask shape has the most
     work per byte and should win by the widest margin. avx2 dispatch
     only: the blocked scalar fallback is expected to be around parity.
  3. e2e: adaptive dispatch (every candidate starts on the early-abort
     scalar probe, promoted to block evaluation only after surviving the
     promotion threshold) must not lose to the plain scalar path
     end-to-end (speedup < 1.0). avx2 only, same reasoning as the micro
     gate.
  4. shared_scan: one shared phase-1 pass per query group must beat
     per-query scans by >= 1.5x on modeled makespan at paper scale
     (>= 1M rows; the committed BENCH_kernels.json is a full-mode run).
     Quick-mode CI runs amortize less fixed per-batch work and hover
     right at 1.5x, so they get a 1.4x guardrail instead of a flake.
     The win is deduplicated IO, not SIMD, so this gate applies on
     every dispatch.

The perf thresholds are deliberately looser than the shape checks
bench_kernels itself reports (1.5x micro, 1.9x shared at paper scale), so
a loaded CI host does not flake the build while a real regression still
fails it.

Usage: check_kernel_gate.py [path/to/BENCH_kernels.json]
"""

import json
import sys

MICRO_THRESHOLD = 1.0
E2E_THRESHOLD = 1.0
SHARED_THRESHOLD = 1.5  # full-scale runs (>= SHARED_FULL_ROWS rows)
SHARED_THRESHOLD_QUICK = 1.4
SHARED_FULL_ROWS = 1_000_000


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernels.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"kernel-gate: cannot read {path}: {e}", file=sys.stderr)
        return 1

    runs = doc.get("runs", [])
    failures = []

    # 1. Correctness: every run carrying an identical flag must say 1.
    broken = [r for r in runs if r.get("identical") == 0]
    for r in broken:
        failures.append(
            f"identical=0 on config={r.get('config')} algo={r.get('algo')}"
        )

    # 2. micro throughput (avx2 only).
    micro = [r for r in runs if r.get("config") == "micro"]
    if not micro:
        print(f"kernel-gate: no micro runs in {path}", file=sys.stderr)
        return 1
    if all(r.get("dispatch") == "avx2" for r in micro):
        top_card = max(r["cardinality"] for r in micro)
        gated = [r for r in micro if r["cardinality"] == top_card]
        worst = min(gated, key=lambda r: r["speedup"])
        ok = worst["speedup"] >= MICRO_THRESHOLD
        print(
            f"kernel-gate: micro {'OK' if ok else 'FAIL'} — "
            f"cardinality={top_card} rows={worst['num_rows']} "
            f"speedup={worst['speedup']:.2f} (need >= {MICRO_THRESHOLD:.1f})"
        )
        if not ok:
            failures.append(f"micro speedup {worst['speedup']:.2f}")
    else:
        print("kernel-gate: micro SKIP — non-avx2 dispatch")

    # 3. e2e adaptive dispatch (avx2 only).
    e2e = [r for r in runs if r.get("config") == "e2e"]
    avx2_e2e = [r for r in e2e if r.get("dispatch") == "avx2"]
    if avx2_e2e:
        worst = min(avx2_e2e, key=lambda r: r["speedup"])
        ok = worst["speedup"] >= E2E_THRESHOLD
        print(
            f"kernel-gate: e2e {'OK' if ok else 'FAIL'} — "
            f"algo={worst.get('algo')} speedup={worst['speedup']:.2f} "
            f"(need >= {E2E_THRESHOLD:.1f})"
        )
        if not ok:
            failures.append(
                f"e2e {worst.get('algo')} speedup {worst['speedup']:.2f}"
            )
    elif e2e:
        print("kernel-gate: e2e SKIP — non-avx2 dispatch")

    # 4. shared scans (every dispatch: the win is deduplicated IO).
    for r in runs:
        if r.get("config") != "shared_scan":
            continue
        full_scale = r.get("num_rows", 0) >= SHARED_FULL_ROWS
        floor = SHARED_THRESHOLD if full_scale else SHARED_THRESHOLD_QUICK
        ok = r["speedup"] >= floor
        print(
            f"kernel-gate: shared_scan {'OK' if ok else 'FAIL'} — "
            f"queries={r.get('num_queries')} "
            f"speedup={r['speedup']:.2f} (need >= {floor:.1f} at "
            f"{r.get('num_rows')} rows)"
        )
        if not ok:
            failures.append(f"shared_scan speedup {r['speedup']:.2f}")

    if failures:
        print("kernel-gate: FAIL — " + "; ".join(failures), file=sys.stderr)
        return 1
    print("kernel-gate: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
