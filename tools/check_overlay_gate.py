#!/usr/bin/env python3
"""Correctness + perf gate on a freshly emitted BENCH_overlays.json.

ci.sh runs `bench_overlays --quick` and then this script. The build fails
if any of these hold:

  1. Any run says identical=0 — the incremental overlay executor (base
     run + classification + sensitive-row re-checks) returned different
     rows than rebuilding that user's patched SimilaritySpace and running
     the full algorithm. Bit-identity to the rebuild is the overlay
     layer's core contract (docs/OVERLAYS.md), so this gate has no
     threshold and applies to every (users, touch) config.
  2. The 256-user / 1%-touch run's modeled speedup over the per-user cold
     rebuild is below 3.0x. At that point the rebuild baseline pays 256
     cold scans plus 256 full query batches while the incremental path
     pays one base run plus grouped re-checks over ~30% of rows, so the
     deterministic cost model lands far above 3x on both quick and full
     runs (observed ~80x quick); 3.0x is a regression floor, not a flake
     line.

The bench itself reports the same two conditions as shape checks; this
script re-derives them from the JSON so CI fails even if the bench's
stdout is lost, and so the committed BENCH_overlays.json can be
re-audited offline.

Usage: check_overlay_gate.py [path/to/BENCH_overlays.json]
"""

import json
import sys

SPEEDUP_THRESHOLD = 3.0
GATED_USERS = 256
GATED_TOUCH_PCT = 1.0


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_overlays.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"overlay-gate: cannot read {path}: {e}", file=sys.stderr)
        return 1

    runs = doc.get("runs", [])
    if not runs:
        print(f"overlay-gate: no runs in {path}", file=sys.stderr)
        return 1
    failures = []

    # 1. Correctness: every run must reproduce the per-user rebuild rows.
    for r in runs:
        if r.get("identical") == 0:
            failures.append(
                f"identical=0 at users={r.get('users')} "
                f"touch_pct={r.get('touch_pct')}"
            )
    if not failures:
        print(f"overlay-gate: bit-identity OK across {len(runs)} runs")

    # 2. Modeled speedup at the gated multi-tenant point.
    gated = [
        r
        for r in runs
        if r.get("users") == GATED_USERS
        and r.get("touch_pct") == GATED_TOUCH_PCT
    ]
    if not gated:
        print(
            f"overlay-gate: no users={GATED_USERS} "
            f"touch_pct={GATED_TOUCH_PCT} run in {path}",
            file=sys.stderr,
        )
        return 1
    worst = min(gated, key=lambda r: r.get("speedup_vs_rebuild", 0.0))
    speedup = worst.get("speedup_vs_rebuild", 0.0)
    ok = speedup >= SPEEDUP_THRESHOLD
    print(
        f"overlay-gate: speedup {'OK' if ok else 'FAIL'} — "
        f"users={GATED_USERS} touch_pct={GATED_TOUCH_PCT} "
        f"rows={worst.get('num_rows')} queries={worst.get('num_queries')} "
        f"speedup={speedup:.2f} (need >= {SPEEDUP_THRESHOLD:.1f})"
    )
    if not ok:
        failures.append(f"256-user modeled speedup {speedup:.2f}")

    if failures:
        print("overlay-gate: FAIL — " + "; ".join(failures), file=sys.stderr)
        return 1
    print("overlay-gate: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
